"""Fault plans: a seeded, named set of injectors plus the spec grammar.

A plan is the unit the runtime threads through itself: the stream
driver calls :meth:`FaultPlan.on_chunk_end` between chunks, the service
consults :meth:`before_retrain` / :meth:`corrupt_artifacts` /
:meth:`before_table_install` around its control-plane operations, and
:meth:`install` wires the digest-kind injectors into the pipeline's
digest path via :class:`~repro.faults.channel.FaultyDigestChannel`.

Spec grammar (``repro serve --faults SPEC``)::

    SPEC   := clause (';' clause)*
    clause := 'seed=' INT
            | NAME [':' param (',' param)*]
    param  := KEY '=' NUMBER

    e.g.  "seed=7;digest_loss:p=0.2;store_pressure:p=0.5,fraction=0.3"

Injector names and their parameters are the classes in
:mod:`repro.faults.injectors` (see API.md for the full table).  The
seed defaults to 0; every injector gets an independent generator
spawned from it in clause order, so two plans built from the same spec
replay identical fault schedules.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.utils.rng import SeedLike, as_rng, spawn_seeds

from repro.faults.channel import FaultyDigestChannel
from repro.faults.injectors import (
    INJECTOR_TYPES,
    ArtifactCorruption,
    ChunkFaultInjector,
    DigestDelay,
    DigestDuplication,
    DigestLoss,
    DigestReorder,
    FaultInjector,
    RetrainFailure,
    TableInstallFlake,
)


def _coerce(key: str, value: str) -> Union[int, float]:
    try:
        return int(value)
    except ValueError:
        pass
    try:
        return float(value)
    except ValueError:
        raise ValueError(f"fault spec parameter {key}={value!r} is not a number")


def parse_fault_spec(spec: str) -> tuple:
    """``(seed, [(name, params), ...])`` from the spec grammar above."""
    seed: Optional[int] = None
    clauses: List[tuple] = []
    for raw in spec.split(";"):
        clause = raw.strip()
        if not clause:
            continue
        if clause.startswith("seed="):
            seed = int(clause[len("seed="):])
            continue
        name, _, params_part = clause.partition(":")
        name = name.strip()
        if name not in INJECTOR_TYPES:
            known = ", ".join(sorted(INJECTOR_TYPES))
            raise ValueError(f"unknown fault injector {name!r} (known: {known})")
        params: Dict[str, Union[int, float]] = {}
        if params_part.strip():
            for pair in params_part.split(","):
                key, eq, value = pair.partition("=")
                if not eq:
                    raise ValueError(f"malformed fault parameter {pair!r} in {clause!r}")
                params[key.strip()] = _coerce(key.strip(), value.strip())
        clauses.append((name, params))
    return seed, clauses


class FaultPlan:
    """A bound set of injectors sharing one seed fan-out.

    Parameters
    ----------
    injectors:
        Injector instances, in the order that fixes their seed fan-out.
    seed:
        Plan seed; each injector's generator is spawned from it.
    spec:
        The originating spec string, kept so a checkpoint can rebuild
        the plan on resume (:meth:`from_spec` sets it automatically).
    """

    def __init__(
        self,
        injectors: List[FaultInjector],
        seed: SeedLike = 0,
        spec: Optional[str] = None,
    ) -> None:
        self.injectors = list(injectors)
        self.seed = seed
        self.spec = spec
        rng = as_rng(seed)
        for injector, s in zip(self.injectors, spawn_seeds(rng, max(1, len(self.injectors)))):
            injector.bind(as_rng(s))

        by_kind: Dict[str, List[FaultInjector]] = {}
        for injector in self.injectors:
            by_kind.setdefault(injector.kind, []).append(injector)
        for kind in ("digest", "retrain", "artifact", "install"):
            names = [i.name for i in by_kind.get(kind, [])]
            if len(names) != len(set(names)):
                raise ValueError(f"duplicate {kind} injectors in fault plan: {names}")

        self._chunk: List[ChunkFaultInjector] = [
            i for i in self.injectors if isinstance(i, ChunkFaultInjector)
        ]
        self._retrain = self._one(RetrainFailure)
        self._artifact = self._one(ArtifactCorruption)
        self._install = self._one(TableInstallFlake)
        digest = {i.name: i for i in self.injectors if i.kind == "digest"}
        self.channel: Optional[FaultyDigestChannel] = None
        if digest:
            self.channel = FaultyDigestChannel(
                loss=digest.get(DigestLoss.name),
                dup=digest.get(DigestDuplication.name),
                reorder=digest.get(DigestReorder.name),
                delay=digest.get(DigestDelay.name),
            )

    def _one(self, cls):
        found = [i for i in self.injectors if isinstance(i, cls)]
        return found[0] if found else None

    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Build a plan from the spec grammar (see module docstring)."""
        seed, clauses = parse_fault_spec(spec)
        injectors = [INJECTOR_TYPES[name](**params) for name, params in clauses]
        return cls(injectors, seed=0 if seed is None else seed, spec=spec)

    # -- runtime hooks ------------------------------------------------------

    def install(self, pipeline) -> None:
        """Wire the digest channel into *pipeline* (idempotent)."""
        if self.channel is not None and self.channel.pipeline is not pipeline:
            self.channel.attach(pipeline)

    def on_chunk_end(self, pipeline, chunk_index: int) -> None:
        """Chunk-boundary hook: chunk injectors, then channel clock edge.

        The kill injector (if any) runs *last*, so store/register faults
        and channel ageing of this boundary are already applied — the
        state a checkpoint of the previous chunk plus this replay would
        reproduce.
        """
        for injector in self._chunk:
            injector.on_chunk_end(pipeline, chunk_index)
        if self.channel is not None:
            self.channel.on_chunk_end()

    def before_retrain(self) -> None:
        if self._retrain is not None:
            self._retrain.before_retrain()

    def corrupt_artifacts(self, artifacts):
        if self._artifact is not None:
            return self._artifact.corrupt(artifacts)
        return artifacts

    def before_table_install(self) -> None:
        if self._install is not None:
            self._install.before_table_install()

    def finalize(self) -> None:
        """End of stream: deliver whatever the channel still holds."""
        if self.channel is not None:
            self.channel.flush()

    # -- reporting ----------------------------------------------------------

    def counts(self) -> Dict[str, int]:
        """``faults.<name>`` → times fired, for injectors that fired."""
        return {i.counter: i.fired for i in self.injectors if i.fired}

    def total_fired(self) -> int:
        return sum(i.fired for i in self.injectors)

    # -- checkpointing ------------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "spec": self.spec,
            "injectors": [i.state_dict() for i in self.injectors],
            "channel": None if self.channel is None else self.channel.state_dict(),
        }

    def load_state(self, doc: dict) -> None:
        states = doc.get("injectors", [])
        if len(states) != len(self.injectors):
            raise ValueError(
                f"checkpoint holds {len(states)} injector states for a plan "
                f"with {len(self.injectors)} injectors"
            )
        for injector, state in zip(self.injectors, states):
            injector.load_state(state)
        if self.channel is not None and doc.get("channel") is not None:
            self.channel.load_state(doc["channel"])
