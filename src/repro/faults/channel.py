"""A lossy, reordering digest channel between data and control plane.

On hardware the digest path is an asynchronous DMA ring plus a PCIe
hop: under load it drops, duplicates, reorders, and delays reports.  The
simulator's default channel is a synchronous function call
(``pipeline.controller.handle_digest``); this class sits in that call
path (``pipeline.digest_channel``) and applies the digest-kind
injectors in a fixed order per digest:

    loss → duplication → delay (per copy) → reorder (per copy)

Delayed digests age at chunk boundaries (:meth:`on_chunk_end`) —  the
only clock the serving loop has — and everything still pending is
delivered by :meth:`flush` when the stream ends, so a fault run loses
exactly the digests the loss injector dropped, never the tail.

Accounting invariant (asserted by the chaos suite)::

    sent + duplicated == delivered + dropped + pending
"""

from __future__ import annotations

from typing import List, Optional

from repro.switch.pipeline import Digest, SwitchPipeline

from repro.faults.injectors import (
    DigestDelay,
    DigestDuplication,
    DigestLoss,
    DigestReorder,
)


def digest_to_obj(digest: Digest) -> list:
    ft = digest.five_tuple
    return [
        ft.src_ip, ft.dst_ip, ft.src_port, ft.dst_port, ft.protocol,
        digest.label, digest.timestamp,
    ]


def digest_from_obj(obj: list) -> Digest:
    from repro.datasets.packet import FiveTuple

    return Digest(
        five_tuple=FiveTuple(*(int(v) for v in obj[:5])),
        label=int(obj[5]),
        timestamp=float(obj[6]),
    )


class FaultyDigestChannel:
    """Digest transport with injectable loss/dup/reorder/delay."""

    def __init__(
        self,
        loss: Optional[DigestLoss] = None,
        dup: Optional[DigestDuplication] = None,
        reorder: Optional[DigestReorder] = None,
        delay: Optional[DigestDelay] = None,
    ) -> None:
        self.loss = loss
        self.dup = dup
        self.reorder = reorder
        self.delay = delay
        self.pipeline: Optional[SwitchPipeline] = None
        self.sent = 0
        self.delivered = 0
        self.dropped = 0
        self.duplicated = 0
        self._held: Optional[Digest] = None
        #: ``[remaining_chunk_boundaries, digest]`` queue entries.
        self._delayed: List[list] = []

    # -- wiring -------------------------------------------------------------

    def attach(self, pipeline: SwitchPipeline) -> None:
        self.pipeline = pipeline
        pipeline.digest_channel = self

    @property
    def pending(self) -> int:
        return len(self._delayed) + (1 if self._held is not None else 0)

    # -- the transport ------------------------------------------------------

    def send(self, digest: Digest) -> None:
        """Called by the pipeline in place of direct controller delivery."""
        self.sent += 1
        if self.loss is not None and self.loss.applies():
            self.loss.record()
            self.dropped += 1
            return
        copies = 1
        if self.dup is not None and self.dup.applies():
            self.dup.record()
            self.duplicated += 1
            copies = 2
        for _ in range(copies):
            self._route(digest)

    def _route(self, digest: Digest) -> None:
        if self.delay is not None and self.delay.applies():
            self.delay.record()
            self._delayed.append([self.delay.chunks, digest])
            return
        if self.reorder is not None and self.reorder.applies():
            self.reorder.record()
            if self._held is None:
                self._held = digest
                return
            # Already holding one: release it, hold the newcomer — at most
            # one digest is ever in flight out of order.
            held, self._held = self._held, digest
            self._deliver(held)
            return
        self._deliver(digest)
        if self._held is not None:
            held, self._held = self._held, None
            self._deliver(held)  # the swap completes: held rides out second

    def _deliver(self, digest: Digest) -> None:
        self.delivered += 1
        if self.pipeline is not None and self.pipeline.controller is not None:
            self.pipeline.controller.handle_digest(digest)

    # -- clock edges --------------------------------------------------------

    def on_chunk_end(self) -> None:
        """Age the delay queue and release any held-for-reorder digest.

        Reordering never crosses a chunk boundary: the boundary is where
        the control plane reconciles, so a held digest is delivered here.
        """
        if self._held is not None:
            held, self._held = self._held, None
            self._deliver(held)
        if self._delayed:
            still: List[list] = []
            for entry in self._delayed:
                entry[0] -= 1
                if entry[0] <= 0:
                    self._deliver(entry[1])
                else:
                    still.append(entry)
            self._delayed = still

    def flush(self) -> None:
        """End of stream: deliver everything still pending, in order."""
        if self._held is not None:
            held, self._held = self._held, None
            self._deliver(held)
        for entry in self._delayed:
            self._deliver(entry[1])
        self._delayed = []

    # -- checkpointing ------------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "sent": self.sent,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "duplicated": self.duplicated,
            "held": None if self._held is None else digest_to_obj(self._held),
            "delayed": [[int(n), digest_to_obj(d)] for n, d in self._delayed],
        }

    def load_state(self, doc: dict) -> None:
        self.sent = int(doc["sent"])
        self.delivered = int(doc["delivered"])
        self.dropped = int(doc["dropped"])
        self.duplicated = int(doc["duplicated"])
        held = doc.get("held")
        self._held = None if held is None else digest_from_obj(held)
        self._delayed = [
            [int(n), digest_from_obj(d)] for n, d in doc.get("delayed", [])
        ]
