"""Dependency-free HTTP operations endpoint for a live serving run.

:class:`OpsServer` attaches to a running
:class:`~repro.runtime.service.OnlineDetectionService` or
:class:`~repro.cluster.service.ClusterService` on a background daemon
thread (stdlib :class:`~http.server.ThreadingHTTPServer`, nothing to
install) and exposes the run over plain HTTP:

Read surface — safe to poll at any rate, mutates nothing:

- ``GET /healthz``  — liveness, generation, uptime.
- ``GET /metrics``  — full registry snapshot as JSON, or Prometheus
  text exposition with ``?format=prometheus``.
- ``GET /shards``   — per-shard view: packets, drain state, and every
  ``cluster.shard.<k>.*`` registry metric regrouped by shard.
- ``GET /events``   — bounded tail of the telemetry event log, with a
  ``since_seq`` cursor and ``?follow=1`` long-poll/SSE streaming.
- ``GET /mitigation`` — the attached policy engine's live view (policy
  spec, guard state, efficacy meter, active blocks); 404 when no
  policy is attached.

Control surface — token-guarded POSTs that *queue* a verb through
:meth:`~repro.runtime.control.OpsControlMixin.request_control`; the
serving thread applies it at the next chunk boundary through the same
code paths the drift loop uses (hence ``202 Accepted``, never ``200``):

- ``POST /control/retrain``
- ``POST /control/rollback``
- ``POST /control/drain/<shard>``
- ``POST /control/unblock/<flow>`` — lift mitigation from a flow
  (``src-dst-sport-dport-proto`` key, see
  :func:`repro.mitigation.flow_key`).

GET handlers never create registry instruments and never emit events,
so a run scraped continuously produces decisions and telemetry
bit-identical to an unobserved run — the differential test in
``tests/ops/test_differential.py`` holds this line.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.ops.prometheus import render_prometheus
from repro.telemetry import get_registry

#: Header carrying the shared control secret (``Authorization: Bearer``
#: is also accepted).
TOKEN_HEADER = "X-Repro-Token"

#: Default cap on events returned by one /events call without ``n=``.
DEFAULT_EVENT_TAIL = 100

#: How long one ``follow=1`` request blocks waiting for a fresh event
#: before returning what it has (clients just reconnect with the
#: cursor from the last response).
FOLLOW_TIMEOUT_S = 10.0


class OpsRequestHandler(BaseHTTPRequestHandler):
    """Routes one request against ``self.server.ops`` (the OpsServer)."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-ops/1"

    # The default handler writes an access log line per request to
    # stderr — at scrape rates that is pure noise on an interactive run.
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass

    # -- plumbing ------------------------------------------------------------

    @property
    def ops(self) -> "OpsServer":
        return self.server.ops  # type: ignore[attr-defined]

    def _send(
        self,
        code: int,
        body: bytes,
        content_type: str = "application/json",
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for key, value in (extra_headers or {}).items():
            self.send_header(key, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, code: int, doc: Dict) -> None:
        self._send(code, json.dumps(doc, sort_keys=True).encode() + b"\n")

    def _error(self, code: int, message: str) -> None:
        self._send_json(code, {"error": message})

    def _query(self) -> Tuple[str, Dict[str, str]]:
        parts = urlsplit(self.path)
        params = {k: v[-1] for k, v in parse_qs(parts.query).items()}
        return parts.path.rstrip("/") or "/", params

    def _authorized(self) -> bool:
        token = self.ops.token
        if token is None:
            return True
        supplied = self.headers.get(TOKEN_HEADER)
        if supplied is None:
            auth = self.headers.get("Authorization", "")
            if auth.startswith("Bearer "):
                supplied = auth[len("Bearer ") :]
        return supplied == token

    # -- GET -----------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        path, params = self._query()
        try:
            if path == "/healthz":
                self._send_json(200, self.ops.healthz())
            elif path == "/metrics":
                if params.get("format") == "prometheus":
                    text = render_prometheus(self.ops.metrics())
                    self._send(200, text.encode(), "text/plain; version=0.0.4")
                else:
                    self._send_json(200, self.ops.metrics())
            elif path == "/shards":
                self._send_json(200, self.ops.shards())
            elif path == "/mitigation":
                doc = self.ops.mitigation()
                if doc is None:
                    self._error(404, "no mitigation policy attached")
                else:
                    self._send_json(200, doc)
            elif path == "/events":
                self._do_events(params)
            else:
                self._error(404, f"no such endpoint: {path}")
        except BrokenPipeError:
            pass  # poller went away mid-write; nothing to clean up

    def _do_events(self, params: Dict[str, str]) -> None:
        try:
            n = int(params["n"]) if "n" in params else DEFAULT_EVENT_TAIL
            since = int(params["since_seq"]) if "since_seq" in params else None
        except ValueError:
            self._error(400, "n and since_seq must be integers")
            return
        registry = self.ops.registry
        follow = params.get("follow") in ("1", "true", "yes")
        if not follow:
            events, last_seq = registry.tail(n, since_seq=since)
            self._send_json(200, {"events": events, "last_seq": last_seq})
            return
        # SSE long-poll: block until an event lands past the cursor (or
        # the follow window times out), then emit everything new as one
        # batch of `data:` frames and close.  Clients resume from the
        # `id:` of the last frame.
        cursor = since if since is not None else registry.last_seq
        registry.wait_for_events(cursor, timeout=self.ops.follow_timeout_s)
        events, last_seq = registry.tail(None, since_seq=cursor)
        frames = []
        for record in events:
            frames.append(f"id: {record['seq']}\ndata: {json.dumps(record, sort_keys=True)}\n\n")
        if not events:
            frames.append(f": keepalive last_seq={last_seq}\n\n")
        self._send(
            200,
            "".join(frames).encode(),
            "text/event-stream",
            extra_headers={"Cache-Control": "no-store"},
        )

    # -- POST ----------------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        path, _ = self._query()
        if not path.startswith("/control/"):
            self._error(404, f"no such endpoint: {path}")
            return
        if not self._authorized():
            self._error(403, f"control requires the {TOKEN_HEADER} header")
            return
        parts = path.split("/")[2:]  # ["retrain"], ["drain", "3"], ["unblock", key]
        verb = parts[0] if parts else ""
        shard: Optional[int] = None
        flow: Optional[str] = None
        if verb == "drain":
            if len(parts) != 2 or not parts[1].lstrip("-").isdigit():
                self._error(400, "drain takes a shard index: /control/drain/<k>")
                return
            shard = int(parts[1])
        elif verb == "unblock":
            if len(parts) != 2 or not parts[1]:
                self._error(
                    400,
                    "unblock takes a flow key: "
                    "/control/unblock/<src-dst-sport-dport-proto>",
                )
                return
            flow = parts[1]
        elif len(parts) != 1:
            self._error(404, f"no such control verb path: {path}")
            return
        try:
            ticket = self.ops.service.request_control(
                verb, shard=shard, source="http", flow=flow
            )
        except ValueError as exc:
            self._error(400, str(exc))
            return
        self._send_json(202, {"accepted": True, "ticket": ticket})


class OpsServer:
    """Background HTTP ops endpoint bound to one service + registry.

    ``port=0`` binds an ephemeral port (the resolved one is ``.port``
    after :meth:`start`).  ``token`` guards the control surface only —
    reads stay open, writes require the shared secret.  Use as a
    context manager or call :meth:`close` in a ``finally``; the server
    thread is a daemon either way, so a crashed serve loop never hangs
    the process on it.
    """

    def __init__(
        self,
        service,
        registry=None,
        host: str = "127.0.0.1",
        port: int = 0,
        token: Optional[str] = None,
        follow_timeout_s: float = FOLLOW_TIMEOUT_S,
    ) -> None:
        self.service = service
        self.registry = registry if registry is not None else get_registry()
        self.host = host
        self.requested_port = port
        self.token = token
        self.follow_timeout_s = follow_timeout_s
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "OpsServer":
        if self._httpd is not None:
            raise RuntimeError("ops server already started")
        self._httpd = ThreadingHTTPServer(
            (self.host, self.requested_port), OpsRequestHandler
        )
        self._httpd.daemon_threads = True
        self._httpd.ops = self  # type: ignore[attr-defined]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-ops",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "OpsServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def port(self) -> int:
        if self._httpd is None:
            raise RuntimeError("ops server not started")
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- endpoint documents (also callable directly, e.g. from tests) --------

    def healthz(self) -> Dict:
        status = self.service.ops_status()
        return {
            "status": "serving" if status["serving"] else "idle",
            "serving": status["serving"],
            "uptime_s": status["uptime_s"],
            "generation": status.get("generation", 0),
            "n_chunks": status["n_chunks"],
            "n_packets": status["n_packets"],
            "kind": status.get("kind", "unknown"),
        }

    def metrics(self) -> Dict:
        doc = self.registry.snapshot()
        doc["ops"] = self.service.ops_status()
        return doc

    def mitigation(self) -> Optional[Dict]:
        """``GET /mitigation``: the service's policy-engine view, or
        ``None`` (→ 404) when no policy is attached."""
        status_fn = getattr(self.service, "mitigation_status", None)
        return None if status_fn is None else status_fn()

    def shards(self) -> Dict:
        """Per-shard view, regrouped from the flat registry namespace.

        For the single service this degrades to one pseudo-shard so
        dashboards don't need a second code path.
        """
        status = self.service.ops_status()
        counters = self.registry.counters_dict()
        gauges = self.registry.gauges_dict()
        n_shards = int(status.get("n_shards", 1))
        drained = set(status.get("drained_shards", []))
        shard_packets = list(status.get("shard_packets", []))
        per_shard = [
            {
                "shard": k,
                "drained": k in drained,
                "packets": shard_packets[k] if k < len(shard_packets) else None,
                "metrics": {},
            }
            for k in range(n_shards)
        ]
        prefix = "cluster.shard."
        for source in (counters, gauges):
            for name, value in source.items():
                if not name.startswith(prefix):
                    continue
                shard_str, _, rest = name[len(prefix) :].partition(".")
                if rest and shard_str.isdigit() and int(shard_str) < n_shards:
                    per_shard[int(shard_str)]["metrics"][rest] = value
        for entry in per_shard:
            # generation = count of accepted table swaps on that shard.
            entry["generation"] = int(
                entry["metrics"].get(
                    "switch.table.swaps", status.get("generation", 0)
                )
            )
        return {
            "kind": status.get("kind", "unknown"),
            "n_shards": n_shards,
            "last_chunk": status.get("last_chunk", {}),
            "swap_events": status.get("swap_events", []),
            "control_events": status.get("control_events", []),
            "pending_controls": status.get("pending_controls", []),
            "shards": per_shard,
        }
