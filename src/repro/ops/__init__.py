"""Live operations surface: HTTP ops endpoint over a serving run.

See :mod:`repro.ops.server` for the endpoint catalogue and the
read/control split, and :mod:`repro.ops.prometheus` for the scrape
format.  Everything here is stdlib-only (``http.server`` + ``json``),
mirroring the repo's no-new-dependencies rule.
"""

from repro.ops.prometheus import histogram_quantile, render_prometheus
from repro.ops.server import (
    DEFAULT_EVENT_TAIL,
    FOLLOW_TIMEOUT_S,
    TOKEN_HEADER,
    OpsRequestHandler,
    OpsServer,
)

__all__ = [
    "DEFAULT_EVENT_TAIL",
    "FOLLOW_TIMEOUT_S",
    "TOKEN_HEADER",
    "OpsRequestHandler",
    "OpsServer",
    "histogram_quantile",
    "render_prometheus",
]
