"""Prometheus text-exposition rendering of a registry snapshot.

Pure functions from a ``telemetry.json``-shaped snapshot document (see
:meth:`repro.telemetry.MetricRegistry.snapshot`) to the Prometheus
`text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ —
version 0.0.4, the one every Prometheus server scrapes.  No client
library is involved; the format is a line protocol and the registry
already holds everything a scrape needs.

Naming follows the Prometheus conventions applied to our flat dotted
names: dots become underscores under a ``repro_`` namespace prefix,
counters gain the ``_total`` suffix (``switch.path.red`` →
``repro_switch_path_red_total``), gauges map 1:1, and histograms emit
the full cumulative-bucket series (``_bucket{le="..."}``, ``_sum``,
``_count``) plus interpolated quantile samples in summary style
(``{quantile="0.5"}``) so dashboards get p50/p90/p99 without PromQL
``histogram_quantile`` gymnastics.  Shard-tagged names
(``cluster.shard.3.switch.path.red``) become proper labels:
``repro_cluster_switch_path_red_total{shard="3"}``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

#: Quantiles rendered for every non-empty histogram.
QUANTILES = (0.5, 0.9, 0.99)

_SHARD_PREFIX = "cluster.shard."


def _sanitize(name: str) -> str:
    """Dotted metric name → Prometheus metric name."""
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    base = "".join(out)
    if base and base[0].isdigit():
        base = "_" + base
    return f"repro_{base}"


def _shard_split(name: str) -> Tuple[str, Optional[str]]:
    """``cluster.shard.<k>.<rest>`` → (``cluster.<rest>``, ``"<k>"``)."""
    if name.startswith(_SHARD_PREFIX):
        shard, _, rest = name[len(_SHARD_PREFIX) :].partition(".")
        if rest and shard.isdigit():
            return f"cluster.{rest}", shard
    return name, None


def _fmt_value(v: float) -> str:
    if v != v:  # NaN
        return "NaN"
    if v in (float("inf"), float("-inf")):
        return "+Inf" if v > 0 else "-Inf"
    f = float(v)
    return repr(int(f)) if f == int(f) else repr(f)


def _labels(pairs: Iterable[Tuple[str, str]]) -> str:
    rendered = ",".join(f'{k}="{v}"' for k, v in pairs)
    return "{" + rendered + "}" if rendered else ""


def histogram_quantile(summary: Dict, q: float) -> float:
    """Estimate the *q*-quantile of a histogram summary document.

    Linear interpolation inside the owning bucket, clamped to the
    observed min/max for the open-ended outer buckets (the standard
    Prometheus estimation, but with exact extremes available since the
    registry tracks them).
    """
    count = int(summary.get("count", 0))
    if count == 0:
        return float("nan")
    edges = [float(e) for e in summary["edges"]]
    buckets = [int(c) for c in summary["bucket_counts"]]
    vmin = float(summary["min"])
    vmax = float(summary["max"])
    target = q * count
    cumulative = 0
    for i, c in enumerate(buckets):
        if cumulative + c >= target and c > 0:
            lo = edges[i - 1] if i > 0 else vmin
            hi = edges[i] if i < len(edges) else vmax
            lo = max(lo, vmin)
            hi = min(hi, vmax)
            if hi <= lo:
                return lo
            fraction = (target - cumulative) / c
            return lo + fraction * (hi - lo)
        cumulative += c
    return vmax


def render_prometheus(snapshot: Dict) -> str:
    """Render *snapshot* (a registry snapshot document) as exposition text."""
    lines: List[str] = []

    counters = snapshot.get("counters") or {}
    typed_help: set = set()

    def _emit(metric: str, kind: str, labels: str, value: float) -> None:
        if metric not in typed_help:
            lines.append(f"# TYPE {metric} {kind}")
            typed_help.add(metric)
        lines.append(f"{metric}{labels} {_fmt_value(value)}")

    for name in sorted(counters):
        base, shard = _shard_split(name)
        metric = _sanitize(base) + "_total"
        label = _labels([("shard", shard)] if shard is not None else [])
        _emit(metric, "counter", label, counters[name])

    gauges = snapshot.get("gauges") or {}
    for name in sorted(gauges):
        base, shard = _shard_split(name)
        metric = _sanitize(base)
        label = _labels([("shard", shard)] if shard is not None else [])
        _emit(metric, "gauge", label, gauges[name])

    histograms = snapshot.get("histograms") or {}
    for name in sorted(histograms):
        h = histograms[name]
        base, shard = _shard_split(name)
        metric = _sanitize(base)
        extra = [("shard", shard)] if shard is not None else []
        if metric not in typed_help:
            lines.append(f"# TYPE {metric} histogram")
            typed_help.add(metric)
        cumulative = 0
        edges = list(h.get("edges") or [])
        buckets = list(h.get("bucket_counts") or [])
        for edge, count in zip(edges + [float("inf")], buckets):
            cumulative += int(count)
            le = "+Inf" if edge == float("inf") else _fmt_value(float(edge))
            lines.append(
                f"{metric}_bucket{_labels(extra + [('le', le)])} {cumulative}"
            )
        lines.append(f"{metric}_sum{_labels(extra)} {_fmt_value(h.get('sum', 0.0))}")
        lines.append(f"{metric}_count{_labels(extra)} {int(h.get('count', 0))}")
        if h.get("count"):
            for q in QUANTILES:
                value = histogram_quantile(h, q)
                lines.append(
                    f"{metric}{_labels(extra + [('quantile', repr(q))])} "
                    f"{_fmt_value(value)}"
                )
    return "\n".join(lines) + "\n"
