"""Command-line interface: ``python -m repro <command>``.

Subcommands cover the adoption path end to end:

* ``train``   — fit iGuard on a benign capture (synthetic or pcap) and
  report the compiled whitelist.
* ``evaluate``— run one attack workload through the CPU protocol and
  print the paper's metric triple for iForest / Magnifier / iGuard.
* ``deploy``  — run the full testbed protocol (switch simulator) for one
  attack and print per-packet metrics, paths, and resources.
* ``export``  — write the P4-16 program and table entries for a trained
  model.
* ``attacks`` — list the 15 attack workload names.
* ``report``  — pretty-print a saved ``telemetry.json`` run report.

Every experiment command accepts ``--telemetry PATH``: the run then
executes under a fresh metric registry and writes a structured report
(counters, span tree, events — see :mod:`repro.telemetry`) to PATH.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="iGuard (CoNEXT 2024) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    telemetry = argparse.ArgumentParser(add_help=False)
    telemetry.add_argument(
        "--telemetry",
        metavar="PATH",
        help="write a structured telemetry.json run report to PATH",
    )

    p_train = sub.add_parser(
        "train", help="fit iGuard on benign traffic", parents=[telemetry]
    )
    p_train.add_argument("--pcap", help="benign capture to train on (else synthetic)")
    p_train.add_argument("--flows", type=int, default=320, help="synthetic benign flows")
    p_train.add_argument("--trees", type=int, default=11)
    p_train.add_argument("--seed", type=int, default=7)

    p_eval = sub.add_parser(
        "evaluate", help="CPU-protocol metrics for one attack", parents=[telemetry]
    )
    p_eval.add_argument("attack", help='workload name, e.g. "Mirai" (see: attacks)')
    p_eval.add_argument("--flows", type=int, default=320)
    p_eval.add_argument("--seed", type=int, default=7)

    p_deploy = sub.add_parser(
        "deploy", help="testbed protocol for one attack", parents=[telemetry]
    )
    p_deploy.add_argument("attack")
    p_deploy.add_argument("--model", choices=("iforest", "iguard"), default="iguard")
    p_deploy.add_argument("--flows", type=int, default=320)
    p_deploy.add_argument("--seed", type=int, default=7)

    p_export = sub.add_parser(
        "export", help="write P4 artifacts for a trained model", parents=[telemetry]
    )
    p_export.add_argument("--p4", default="iguard_whitelist.p4")
    p_export.add_argument("--entries", default="iguard_entries.json")
    p_export.add_argument("--flows", type=int, default=320)
    p_export.add_argument("--seed", type=int, default=7)

    sub.add_parser("attacks", help="list attack workload names")

    p_report = sub.add_parser(
        "report", help="pretty-print a saved telemetry run report"
    )
    p_report.add_argument("path", help="telemetry.json written by --telemetry")
    p_report.add_argument(
        "--events", type=int, default=10, help="max events to show (default 10)"
    )
    return parser


def _cmd_attacks(_args) -> int:
    from repro.datasets import attack_names

    for name in attack_names():
        print(name)
    return 0


def _train_model(flows: int, trees: int, seed: int, pcap: Optional[str]):
    from repro.core import IGuard
    from repro.datasets import generate_benign_flows
    from repro.features import FlowFeatureExtractor

    extractor = FlowFeatureExtractor(
        feature_set="switch", pkt_count_threshold=8, timeout=5.0
    )
    if pcap:
        from repro.datasets.pcap import read_pcap

        trace = read_pcap(pcap)
        flow_list = list(trace.flows().values())
        print(f"loaded {len(trace)} packets / {len(flow_list)} flows from {pcap}")
    else:
        flow_list = generate_benign_flows(flows, seed=seed)
        print(f"generated {len(flow_list)} synthetic benign flows")
    x_train, _ = extractor.extract_flows(flow_list)
    model = IGuard(n_trees=trees, subsample_size=96, k_aug=96, tau_split=0.0,
                   seed=seed).fit(x_train)
    return model, x_train


def _cmd_train(args) -> int:
    model, x_train = _train_model(args.flows, args.trees, args.seed, args.pcap)
    rules = model.to_rules(max_cells=1024, seed=args.seed)
    print(f"trained iGuard: {model.forest_.n_leaves()} leaves across "
          f"{args.trees} trees")
    print(f"compiled {len(rules)} whitelist rules "
          f"(consistency on train: {model.consistency(rules, x_train):.3f})")
    return 0


def _cmd_evaluate(args) -> int:
    from repro.eval.harness import run_cpu_experiment

    result = run_cpu_experiment(args.attack, n_benign_flows=args.flows, seed=args.seed)
    print(f"{args.attack}: (macro F1 / ROC AUC / PR AUC)")
    for model, m in result.metrics.items():
        print(f"  {model:<10s} {m.macro_f1:.3f} / {m.roc_auc:.3f} / {m.pr_auc:.3f}")
    return 0


def _cmd_deploy(args) -> int:
    from repro.eval.harness import TestbedConfig, run_testbed_experiment

    config = TestbedConfig(n_benign_flows=args.flows)
    result = run_testbed_experiment(args.attack, args.model, config=config,
                                    seed=args.seed)
    m = result.metrics
    print(f"{args.attack} via {args.model}: per-packet macro F1 {m.macro_f1:.3f}  "
          f"ROC {m.roc_auc:.3f}  PR {m.pr_auc:.3f}")
    print(f"rules={result.n_rules}  reward={result.reward:.3f}")
    print(result.resources.row(args.model))
    print("paths:", result.replay.path_counts())
    return 0


def _cmd_export(args) -> int:
    from repro.features import IntegerQuantizer, SWITCH_FEATURES
    from repro.switch import write_artifacts

    model, x_train = _train_model(args.flows, 11, args.seed, None)
    ruleset = model.to_rules(max_cells=1024, seed=args.seed)
    quantizer = IntegerQuantizer(bits=16, space="log").fit(x_train)
    write_artifacts(ruleset.quantize(quantizer), args.p4, args.entries, SWITCH_FEATURES)
    print(f"wrote {args.p4} and {args.entries} ({len(ruleset)} rules)")
    return 0


def _cmd_report(args) -> int:
    from repro.telemetry import format_report, load_report

    print(format_report(load_report(args.path), max_events=args.events))
    return 0


_COMMANDS = {
    "attacks": _cmd_attacks,
    "train": _cmd_train,
    "evaluate": _cmd_evaluate,
    "deploy": _cmd_deploy,
    "export": _cmd_export,
    "report": _cmd_report,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Parse arguments and dispatch to the subcommand; returns exit code."""
    args = _build_parser().parse_args(argv)
    handler = _COMMANDS[args.command]
    telemetry_path = getattr(args, "telemetry", None)
    if telemetry_path:
        from repro.telemetry import run_report

        meta = {
            k: v for k, v in vars(args).items() if k != "telemetry" and v is not None
        }
        with run_report(telemetry_path, meta=meta):
            code = handler(args)
        print(f"telemetry report written to {telemetry_path}")
        return code
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())
