"""Command-line interface: ``python -m repro <command>``.

Subcommands cover the adoption path end to end:

* ``train``   — fit iGuard on a benign capture (synthetic or pcap) and
  report the compiled whitelist.
* ``evaluate``— run one attack workload through the CPU protocol and
  print the paper's metric triple for iForest / Magnifier / iGuard.
* ``deploy``  — run the full testbed protocol (switch simulator) for one
  attack and print per-packet metrics, paths, and resources.
* ``serve``   — run the online serving runtime on a streaming trace:
  chunked replay with drift monitoring, runtime retrains, and staged
  whitelist hot-swaps (:mod:`repro.runtime`).  ``--faults SPEC``
  injects a deterministic fault schedule (:mod:`repro.faults`);
  ``--checkpoint DIR`` journals crash-safe snapshots at chunk
  boundaries; ``--ops-port N`` attaches the live HTTP operations
  endpoint (:mod:`repro.ops`) for the duration of the run.
* ``resume``  — continue a killed ``serve --checkpoint`` run from its
  last snapshot; the completed run prints verdict totals identical to
  the uninterrupted one.  Idempotent on an already-complete checkpoint.
* ``export``  — write the P4-16 program and table entries for a trained
  model; ``--bundle DIR`` also persists the model as a reloadable
  :mod:`repro.io` bundle.
* ``attacks`` — list the 15 attack workload names.
* ``scenario`` — inspect the scenario foundry (:mod:`repro.scenarios`):
  ``scenario list`` shows the registered presets, ``scenario preview
  SPEC`` generates a spec once (streaming, one pass) and prints
  per-window offered-load rows.  ``serve --scenario SPEC`` serves the
  scenario's packet stream instead of an attack split, training the
  model on benign flows drawn from the scenario's own tenant
  populations; generation is chunked, so arbitrarily long scenarios
  serve in bounded memory.
* ``report``  — pretty-print a saved ``telemetry.json`` run report, or
  ``--watch URL`` to render the live ``/metrics`` document of a serving
  run's ops endpoint on an interval.

``deploy --model`` and ``serve --model`` accept either a model name
(``iguard``/``iforest``, trained on the spot) or the path of a bundle
directory written by ``export --bundle``.

Every experiment command accepts ``--telemetry PATH``: the run then
executes under a fresh metric registry and writes a structured report
(counters, span tree, events — see :mod:`repro.telemetry`) to PATH.
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from typing import List, Optional


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="iGuard (CoNEXT 2024) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    telemetry = argparse.ArgumentParser(add_help=False)
    telemetry.add_argument(
        "--telemetry",
        metavar="PATH",
        help="write a structured telemetry.json run report to PATH",
    )

    ops = argparse.ArgumentParser(add_help=False)
    ops.add_argument(
        "--ops-port", type=int, default=None, metavar="PORT",
        help="serve the live HTTP ops endpoint on 127.0.0.1:PORT for the "
        "duration of the run (0 picks a free port; see repro.ops)",
    )
    ops.add_argument(
        "--ops-token", default=None, metavar="TOKEN",
        help="shared secret required (X-Repro-Token header) for POST "
        "/control/* verbs; GET endpoints stay open",
    )

    p_train = sub.add_parser(
        "train", help="fit iGuard on benign traffic", parents=[telemetry]
    )
    p_train.add_argument("--pcap", help="benign capture to train on (else synthetic)")
    p_train.add_argument("--flows", type=int, default=320, help="synthetic benign flows")
    p_train.add_argument("--trees", type=int, default=11)
    p_train.add_argument("--seed", type=int, default=7)

    p_eval = sub.add_parser(
        "evaluate", help="CPU-protocol metrics for one attack", parents=[telemetry]
    )
    p_eval.add_argument("attack", help='workload name, e.g. "Mirai" (see: attacks)')
    p_eval.add_argument("--flows", type=int, default=320)
    p_eval.add_argument("--seed", type=int, default=7)

    p_deploy = sub.add_parser(
        "deploy", help="testbed protocol for one attack", parents=[telemetry]
    )
    p_deploy.add_argument("attack")
    p_deploy.add_argument(
        "--model",
        default="iguard",
        help="'iguard', 'iforest', or the path of a bundle written by "
        "'export --bundle' (deployed without retraining)",
    )
    p_deploy.add_argument("--flows", type=int, default=320)
    p_deploy.add_argument("--seed", type=int, default=7)

    p_serve = sub.add_parser(
        "serve",
        help="online serving runtime: stream, monitor drift, hot-swap",
        parents=[telemetry, ops],
    )
    p_serve.add_argument(
        "attack", nargs="?", default=None,
        help="attack workload name (omit when using --scenario)",
    )
    p_serve.add_argument(
        "--scenario", metavar="SPEC", default=None,
        help="serve a scenario stream instead of an attack split: a preset "
        "name ('pulse_wave_syn'), a preset with overrides "
        "('pulse_wave_syn;duration=120;seed=11'), or a full DSL spec "
        "(see repro.scenarios; 'repro scenario list' shows presets)",
    )
    p_serve.add_argument(
        "--model", default="iguard", help="model name or bundle path (as in deploy)"
    )
    p_serve.add_argument("--flows", type=int, default=240,
                         help="benign flows per stream phase (or scenario "
                         "training flows with --scenario)")
    p_serve.add_argument("--chunk-size", type=int, default=2000)
    p_serve.add_argument(
        "--drift", type=float, default=0.25,
        help="drift score that triggers a retrain (0 disables drift retrains)",
    )
    p_serve.add_argument(
        "--cadence", type=int, default=0,
        help="also retrain every N chunks (0 disables)",
    )
    p_serve.add_argument("--max-swaps", type=int, default=None,
                         help="cap on table swaps for this run")
    p_serve.add_argument(
        "--shift", choices=("device_mix", "none"), default="device_mix",
        help="benign distribution shift of the streamed trace",
    )
    p_serve.add_argument("--seed", type=int, default=7)
    p_serve.add_argument(
        "--policy", metavar="SPEC", default=None,
        help="attach a mitigation policy: a preset name ('drop_fast', "
        "'graduated', 'monitor_only', 'rate_limit_then_drop') or a DSL "
        "spec, e.g. 'graduated;idle_timeout=20;quota:max_blocks=64;"
        "allow:prefix=10.0.0.0/8' (see repro.mitigation)",
    )
    p_serve.add_argument(
        "--faults", metavar="SPEC", default=None,
        help="deterministic fault schedule, e.g. "
        "'seed=7;digest_loss:p=0.2;store_pressure:at=3' (see repro.faults)",
    )
    p_serve.add_argument(
        "--checkpoint", metavar="DIR", default=None,
        help="journal crash-safe snapshots to DIR (resume with 'repro resume DIR')",
    )
    p_serve.add_argument(
        "--checkpoint-every", type=int, default=1, metavar="N",
        help="snapshot every N-th chunk boundary (default 1)",
    )
    p_serve.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="serve through a flow-sharded cluster of N pipelines "
        "(1 = single-pipeline service)",
    )
    p_serve.add_argument(
        "--cluster-executor", choices=("inprocess", "multiprocess", "shm"),
        default="inprocess",
        help="where shard workers run (with --shards > 1): 'inprocess' is "
        "deterministic, 'multiprocess' parallelises across cores over "
        "pipe+pickle, 'shm' parallelises over the zero-copy shared-memory "
        "descriptor transport",
    )

    p_resume = sub.add_parser(
        "resume",
        help="continue a killed 'serve --checkpoint' run from its snapshot",
        parents=[telemetry, ops],
    )
    p_resume.add_argument("checkpoint", help="checkpoint directory written by serve")
    p_resume.add_argument(
        "--no-faults", action="store_true",
        help="resume without the checkpointed fault schedule",
    )

    p_export = sub.add_parser(
        "export", help="write P4 artifacts for a trained model", parents=[telemetry]
    )
    p_export.add_argument("--p4", default="iguard_whitelist.p4")
    p_export.add_argument("--entries", default="iguard_entries.json")
    p_export.add_argument(
        "--bundle", metavar="DIR", default=None,
        help="also save the trained model as a reloadable bundle directory",
    )
    p_export.add_argument("--flows", type=int, default=320)
    p_export.add_argument("--seed", type=int, default=7)

    sub.add_parser("attacks", help="list attack workload names")

    p_scenario = sub.add_parser(
        "scenario", help="inspect scenario presets and DSL specs"
    )
    scenario_sub = p_scenario.add_subparsers(dest="scenario_cmd", required=True)
    scenario_sub.add_parser("list", help="list registered scenario presets")
    p_preview = scenario_sub.add_parser(
        "preview",
        help="generate a scenario once and print per-window offered-load rows",
    )
    p_preview.add_argument(
        "spec", help="preset name or DSL spec (as in serve --scenario)"
    )
    p_preview.add_argument(
        "--every", type=float, default=5.0, metavar="S",
        help="summary window in seconds (default 5)",
    )
    p_preview.add_argument(
        "--seed", type=int, default=None, help="override the spec's seed"
    )

    p_report = sub.add_parser(
        "report", help="pretty-print a saved telemetry run report"
    )
    p_report.add_argument(
        "path", nargs="?", default=None,
        help="telemetry.json written by --telemetry (omit with --watch)",
    )
    p_report.add_argument(
        "--events", type=int, default=10, help="max events to show (default 10)"
    )
    p_report.add_argument(
        "--watch", metavar="URL", default=None,
        help="render the live /metrics document of a serving run's ops "
        "endpoint (e.g. http://127.0.0.1:8080) instead of a saved file",
    )
    p_report.add_argument(
        "--interval", type=float, default=2.0, metavar="S",
        help="seconds between --watch refreshes (default 2)",
    )
    p_report.add_argument(
        "--iterations", type=int, default=0, metavar="N",
        help="stop --watch after N refreshes (0 = until interrupted)",
    )
    return parser


def _cmd_attacks(_args) -> int:
    from repro.datasets import attack_names

    for name in attack_names():
        print(name)
    return 0


def _train_model(flows: int, trees: int, seed: int, pcap: Optional[str]):
    from repro.core import IGuard
    from repro.datasets import generate_benign_flows
    from repro.features import FlowFeatureExtractor

    extractor = FlowFeatureExtractor(
        feature_set="switch", pkt_count_threshold=8, timeout=5.0
    )
    if pcap:
        from repro.datasets.pcap import read_pcap

        trace = read_pcap(pcap)
        flow_list = list(trace.flows().values())
        print(f"loaded {len(trace)} packets / {len(flow_list)} flows from {pcap}")
    else:
        flow_list = generate_benign_flows(flows, seed=seed)
        print(f"generated {len(flow_list)} synthetic benign flows")
    x_train, _ = extractor.extract_flows(flow_list)
    model = IGuard(n_trees=trees, subsample_size=96, k_aug=96, tau_split=0.0,
                   seed=seed).fit(x_train)
    return model, x_train, flow_list


def _cmd_train(args) -> int:
    model, x_train, _flows = _train_model(args.flows, args.trees, args.seed, args.pcap)
    rules = model.to_rules(max_cells=1024, seed=args.seed)
    print(f"trained iGuard: {model.forest_.n_leaves()} leaves across "
          f"{args.trees} trees")
    print(f"compiled {len(rules)} whitelist rules "
          f"(consistency on train: {model.consistency(rules, x_train):.3f})")
    return 0


def _cmd_evaluate(args) -> int:
    from repro.eval.harness import run_cpu_experiment

    result = run_cpu_experiment(args.attack, n_benign_flows=args.flows, seed=args.seed)
    print(f"{args.attack}: (macro F1 / ROC AUC / PR AUC)")
    for model, m in result.metrics.items():
        print(f"  {model:<10s} {m.macro_f1:.3f} / {m.roc_auc:.3f} / {m.pr_auc:.3f}")
    return 0


def _pipeline_from_bundle(path: str):
    """Install a saved model bundle into a fresh pipeline (no retraining)."""
    from repro.io import load_model_bundle
    from repro.switch import Controller, PipelineConfig, SwitchPipeline

    bundle = load_model_bundle(path)
    arts = bundle.artifacts
    meta = bundle.meta or {}
    pipeline = SwitchPipeline(
        fl_rules=arts.fl_rules,
        fl_quantizer=arts.fl_quantizer,
        pl_rules=arts.pl_rules,
        pl_quantizer=arts.pl_quantizer,
        config=PipelineConfig(
            pkt_count_threshold=int(meta.get("pkt_count_threshold", 8)),
            timeout=float(meta.get("timeout", 5.0)),
        ),
    )
    controller = Controller(pipeline)
    return pipeline, controller, bundle


def _deploy_bundle(args) -> int:
    from repro.datasets import make_trace_split
    from repro.eval.metrics import detection_metrics
    from repro.eval.reward import testbed_reward
    from repro.switch import memory_fraction, replay_trace, resource_report

    pipeline, _controller, bundle = _pipeline_from_bundle(args.model)
    print(f"loaded bundle {args.model} ({len(pipeline.fl_table)} FL rules)")
    split = make_trace_split(args.attack, n_benign_flows=args.flows, seed=args.seed)
    replay = replay_trace(split.test_trace, pipeline)
    m = detection_metrics(replay.y_true, replay.y_pred, replay.y_pred.astype(float))
    resources = resource_report(pipeline)
    reward = testbed_reward(m, memory_fraction(resources))
    print(f"{args.attack} via {args.model}: per-packet macro F1 {m.macro_f1:.3f}  "
          f"ROC {m.roc_auc:.3f}  PR {m.pr_auc:.3f}")
    print(f"rules={len(pipeline.fl_table)}  reward={reward:.3f}")
    print(resources.row(str(bundle.meta.get("model", "bundle"))))
    print("paths:", replay.path_counts())
    return 0


def _cmd_deploy(args) -> int:
    from repro.io import is_model_bundle

    if is_model_bundle(args.model):
        return _deploy_bundle(args)
    from repro.eval.harness import TestbedConfig, run_testbed_experiment

    config = TestbedConfig(n_benign_flows=args.flows)
    result = run_testbed_experiment(args.attack, args.model, config=config,
                                    seed=args.seed)
    m = result.metrics
    print(f"{args.attack} via {args.model}: per-packet macro F1 {m.macro_f1:.3f}  "
          f"ROC {m.roc_auc:.3f}  PR {m.pr_auc:.3f}")
    print(f"rules={result.n_rules}  reward={result.reward:.3f}")
    print(result.resources.row(args.model))
    print("paths:", result.replay.path_counts())
    return 0


@contextlib.contextmanager
def _ops_endpoint(service, ops_port, ops_token):
    """Run the block with the HTTP ops endpoint attached (or not).

    ``--ops-port`` without ``--telemetry`` still needs live metrics, so
    a real registry is activated for the run if the process-wide one is
    the null registry; with ``--telemetry`` the report registry is
    shared, and the scrape surface sees exactly what the report will.
    """
    if ops_port is None:
        yield None
        return
    from contextlib import ExitStack

    from repro.ops import OpsServer
    from repro.telemetry import MetricRegistry, get_registry, use_registry

    with ExitStack() as stack:
        registry = get_registry()
        if not registry.enabled:
            registry = stack.enter_context(use_registry(MetricRegistry()))
        server = stack.enter_context(
            OpsServer(service, registry=registry, port=ops_port, token=ops_token)
        )
        print(f"ops endpoint listening on {server.url}")
        yield server


def _print_serve_summary(report, attack: str, shift: str) -> None:
    """Shared serve/resume summary.

    The ``final verdicts:`` line is deterministic for a given trace and
    schedule (no wall-clock quantities), so a kill-and-resume run can be
    diffed against an uninterrupted one on exactly that line.
    """
    import numpy as np

    from repro.eval.metrics import confusion_counts, macro_f1

    print(f"served {report.n_packets} packets in {report.n_chunks} chunks "
          f"({attack}, shift={shift})")
    print(f"drift signals={report.drift_signals}  retrains={report.retrains}  "
          f"swaps={report.n_swaps}  rollbacks={report.n_rollbacks}")
    if report.retrain_failures:
        print(f"retrain failures={report.retrain_failures}")
    for event in report.swap_events:
        outcome = "rolled back" if event.rolled_back else "swapped"
        retry = f", {event.attempts} attempts" if event.attempts > 1 else ""
        print(f"  chunk {event.chunk_index}: {event.reason} -> {outcome} "
              f"(pause {event.duration_s * 1e3:.2f} ms{retry})")
    if report.fault_counts:
        fired = "  ".join(
            f"{name}={count}" for name, count in sorted(report.fault_counts.items())
        )
        print(f"faults fired: {fired}")
    c = confusion_counts(report.y_true, report.y_pred)
    recall = c.tp / (c.tp + c.fn) if (c.tp + c.fn) else 0.0
    fpr = c.fp / (c.fp + c.tn) if (c.fp + c.tn) else 0.0
    print(f"per-packet macro F1 {macro_f1(report.y_true, report.y_pred):.3f}  "
          f"recall {recall:.3f}  FPR {fpr:.3f}")
    benign = int(np.sum(report.y_pred == 0))
    malicious = int(np.sum(report.y_pred == 1))
    print(f"final verdicts: benign={benign} malicious={malicious} "
          f"packets={report.n_packets}")


def _print_shard_summary(report) -> None:
    """Cluster-only lines appended to the shared serve summary."""
    dist = "  ".join(
        f"shard{k}={n}" for k, n in enumerate(report.shard_packets)
    )
    print(f"cluster: {report.n_shards} shards  packet distribution: {dist}")
    for event in report.swap_events:
        if event.failed_shards:
            print(f"  chunk {event.chunk_index}: swap aborted by "
                  f"shard(s) {event.failed_shards} -> all shards rolled back")
    for k, counts in enumerate(report.shard_fault_counts):
        if counts:
            fired = "  ".join(f"{n}={c}" for n, c in sorted(counts.items()))
            print(f"  shard {k} faults: {fired}")


def _scenario_source(spec: str, n_flows: int, seed: int):
    """Build ``(source, train_split, label)`` for a ``--scenario`` serve.

    The source is a fresh streaming :class:`ScenarioStream` (the serve
    loop holds one chunk at a time); the train split is a shim exposing
    only ``train_flows`` — benign flows drawn from the scenario's own
    tenant populations — which is all ``build_pipeline`` reads.
    """
    from types import SimpleNamespace

    from repro.scenarios import parse_scenario

    scenario = parse_scenario(spec)
    stream = scenario.stream()
    train_split = SimpleNamespace(
        train_flows=stream.training_flows(n_flows, seed=seed)
    )
    return scenario.stream(), train_split, scenario.name


def _cmd_serve(args) -> int:
    from repro.io import is_model_bundle
    from repro.runtime import CheckpointManager, OnlineDetectionService, RuntimeConfig

    if args.shards < 1:
        print(f"--shards must be >= 1, got {args.shards}")
        return 2
    if args.scenario and args.attack:
        print("serve: give either an attack name or --scenario, not both")
        return 2
    if not args.scenario and not args.attack:
        print("serve: an attack workload name or --scenario SPEC is required")
        return 2

    if args.scenario:
        if args.shards > 1 and args.cluster_executor == "shm":
            print("serve: the shm transport needs a materialised trace and "
                  "cannot serve a streaming --scenario; use "
                  "--cluster-executor inprocess or multiprocess")
            return 2
        source, split, label = _scenario_source(
            args.scenario, args.flows, args.seed
        )
        shift_label = "scenario"
    else:
        from repro.datasets import make_drift_split

        split = make_drift_split(
            args.attack, n_benign_flows=args.flows, shift=args.shift, seed=args.seed
        )
        source = split.stream_trace
        label = args.attack
        shift_label = args.shift
    if is_model_bundle(args.model):
        pipeline, _controller, _bundle = _pipeline_from_bundle(args.model)
        print(f"loaded bundle {args.model} ({len(pipeline.fl_table)} FL rules)")
    else:
        from repro.eval.harness import build_pipeline

        pipeline, _controller, _model = build_pipeline(
            args.model, split, seed=args.seed
        )
    config = RuntimeConfig(
        chunk_size=args.chunk_size,
        drift_threshold=args.drift,
        drift_window=2,
        baseline_window=2,
        cadence=args.cadence,
        max_swaps=args.max_swaps,
    )
    if args.policy:
        # Attach before shard construction so cluster workers each get
        # a fresh per-shard engine clone; resume needs no re-attach —
        # the engine state rides the pipeline checkpoint.
        from repro.mitigation import attach_policy

        engine = attach_policy(pipeline, args.policy)
        print(f"mitigation policy: {engine.policy.to_spec()}")
    # The meta block carries everything resume needs to rebuild the
    # identical trace and config.
    checkpoint_meta = {
        "attack": label,
        "scenario": args.scenario,
        "model": args.model,
        "flows": args.flows,
        "chunk_size": args.chunk_size,
        "drift": args.drift,
        "cadence": args.cadence,
        "max_swaps": args.max_swaps,
        "shift": args.shift,
        "seed": args.seed,
        "policy": args.policy,
        "faults": args.faults,
        "checkpoint_every": args.checkpoint_every,
        "shards": args.shards,
    }

    if args.shards > 1:
        from repro.cluster import ClusterCheckpointManager, ClusterService

        checkpoint = None
        if args.checkpoint:
            checkpoint = ClusterCheckpointManager(
                args.checkpoint, every=args.checkpoint_every, meta=checkpoint_meta
            )
        with ClusterService(
            pipeline,
            n_shards=args.shards,
            config=config,
            executor=args.cluster_executor,
            seed=args.seed,
            faults_spec=args.faults,
        ) as cluster:
            with _ops_endpoint(cluster, args.ops_port, args.ops_token):
                report = cluster.serve(source, checkpoint=checkpoint)
            mitigation = cluster.mitigation_status() if args.policy else None
        _print_serve_summary(report, label, shift_label)
        _print_shard_summary(report)
        if mitigation is not None:
            totals = mitigation["totals"]
            print(
                f"mitigation: {totals['active_blocks']} blocks active, "
                f"{totals['attack_dropped_packets']} attack pkts dropped, "
                f"{totals['attack_leaked_packets']} leaked, "
                f"{totals['benign_dropped_packets']} benign dropped"
            )
        return 0

    faults = None
    if args.faults:
        from repro.faults import FaultPlan

        faults = FaultPlan.from_spec(args.faults)
    checkpoint = None
    if args.checkpoint:
        checkpoint = CheckpointManager(
            args.checkpoint, every=args.checkpoint_every, meta=checkpoint_meta
        )
    service = OnlineDetectionService(
        pipeline, config=config, seed=args.seed, faults=faults
    )
    with _ops_endpoint(service, args.ops_port, args.ops_token):
        report = service.serve(source, checkpoint=checkpoint)
    _print_serve_summary(report, label, shift_label)
    status = service.mitigation_status()
    if status is not None:
        meter = status["meter"]
        ttb = status["time_to_block_s"]
        mean_ttb = "-" if ttb["mean"] is None else f"{ttb['mean']:.3f}s"
        print(
            f"mitigation: {status['active']['drop']} blocks active, "
            f"{meter['attack_dropped_packets']} attack pkts dropped, "
            f"{meter['attack_leaked_packets']} leaked, "
            f"{meter['benign_dropped_packets']} benign dropped, "
            f"mean time-to-block {mean_ttb}"
        )
    return 0


def _cmd_resume(args) -> int:
    from repro.cluster import (
        CLUSTER_SCHEMA,
        ClusterCheckpointManager,
        cluster_report_from_dict,
        load_any_checkpoint,
        restore_cluster,
    )
    from repro.datasets import make_drift_split
    from repro.runtime import CheckpointManager, report_from_dict, restore_service

    doc = load_any_checkpoint(args.checkpoint)
    is_cluster = doc.get("schema") == CLUSTER_SCHEMA
    meta = doc.get("meta", {})
    attack = meta.get("attack", "?")
    shift = meta.get("shift", "none")
    if doc.get("status") == "complete":
        # Nothing to do — reprint the stored summary so callers diffing
        # output get identical verdict totals from repeated resumes.
        print(f"checkpoint {args.checkpoint} is complete; nothing to resume")
        restored = (
            cluster_report_from_dict(doc["report"])
            if is_cluster
            else report_from_dict(doc["report"])
        )
        _print_serve_summary(restored, attack, shift)
        if is_cluster:
            _print_shard_summary(restored)
        return 0

    faults = None if args.no_faults else "auto"
    scenario_spec = meta.get("scenario")
    if scenario_spec:
        # A scenario stream is a pure function of (spec, seed): a fresh
        # stream replays identically and serve skips the served prefix.
        from repro.scenarios import parse_scenario

        source = parse_scenario(scenario_spec).stream()
        shift = "scenario"
    else:
        split = make_drift_split(
            attack,
            n_benign_flows=int(meta["flows"]),
            shift=shift,
            seed=int(meta["seed"]),
        )
        source = split.stream_trace
    every = int(meta.get("checkpoint_every", 1))
    if is_cluster:
        service, report = restore_cluster(doc, faults=faults)
        print(f"resuming {attack} from chunk {report.n_chunks} "
              f"({report.n_packets} packets served before the crash, "
              f"{report.n_shards} shards)")
        checkpoint = ClusterCheckpointManager(args.checkpoint, every=every, meta=meta)
        with service:
            with _ops_endpoint(service, args.ops_port, args.ops_token):
                report = service.serve(
                    source, checkpoint=checkpoint, resume_report=report
                )
        _print_serve_summary(report, attack, shift)
        _print_shard_summary(report)
        return 0

    service, report = restore_service(doc, faults=faults)
    print(f"resuming {attack} from chunk {report.n_chunks} "
          f"({report.n_packets} packets served before the crash)")
    checkpoint = CheckpointManager(args.checkpoint, every=every, meta=meta)
    with _ops_endpoint(service, args.ops_port, args.ops_token):
        report = service.serve(
            source, checkpoint=checkpoint, resume_report=report
        )
    _print_serve_summary(report, attack, shift)
    return 0


def _cmd_scenario(args) -> int:
    if args.scenario_cmd == "list":
        from repro.scenarios import SCENARIO_PRESETS, scenario_names

        for name in scenario_names():
            s = SCENARIO_PRESETS[name]
            families = ", ".join(c.family for c in s.campaigns) or "benign only"
            print(f"{name:24s} {s.duration_s:>5.0f}s  "
                  f"benign_loads={len(s.benign)}  campaigns={families}")
        return 0

    from repro.scenarios import parse_scenario

    scenario = parse_scenario(args.spec)
    if args.seed is not None:
        from dataclasses import replace

        scenario = replace(scenario, seed=args.seed)
    print(f"scenario {scenario.name}: duration={scenario.duration_s:g}s "
          f"seed={scenario.seed} benign_loads={len(scenario.benign)} "
          f"campaigns={len(scenario.campaigns)} evasions={len(scenario.evasions)}")
    print(f"spec: {scenario.to_spec()}")
    header = (f"{'window':>16s} {'packets':>9s} {'kpps':>7s} {'MB':>7s} "
              f"{'flows':>6s} {'attack%':>8s}  campaigns")
    print(header)
    total = attack_total = 0
    for row in scenario.stream().preview(every_s=args.every):
        total += row.n_packets
        attack_total += row.n_attack_packets
        window = f"[{row.t0:g}, {row.t1:g})"
        print(f"{window:>16s} {row.n_packets:>9d} "
              f"{row.offered_pps / 1e3:>7.1f} {row.n_bytes / 1e6:>7.2f} "
              f"{row.n_flows:>6d} {100 * row.attack_fraction:>7.1f}%  "
              f"{', '.join(row.active_campaigns) or '-'}")
    frac = 100 * attack_total / total if total else 0.0
    print(f"total: {total} packets, {attack_total} attack ({frac:.1f}%)")
    return 0


def _cmd_export(args) -> int:
    from repro.core.deployment import compile_pl_artifacts, quantize_ruleset, SwitchArtifacts
    from repro.features import SWITCH_FEATURES
    from repro.switch import write_artifacts

    model, x_train, flow_list = _train_model(args.flows, 11, args.seed, None)
    ruleset = model.to_rules(max_cells=1024, seed=args.seed)
    fl_rules, fl_quantizer = quantize_ruleset(ruleset, x_train, bits=16)
    write_artifacts(fl_rules, args.p4, args.entries, SWITCH_FEATURES)
    print(f"wrote {args.p4} and {args.entries} ({len(ruleset)} rules)")
    if args.bundle:
        from repro.io import save_model_bundle

        pl_rules, pl_quantizer = compile_pl_artifacts(flow_list, bits=16,
                                                      seed=args.seed)
        artifacts = SwitchArtifacts(
            fl_rules=fl_rules,
            fl_quantizer=fl_quantizer,
            pl_rules=pl_rules,
            pl_quantizer=pl_quantizer,
        )
        save_model_bundle(
            args.bundle,
            artifacts,
            forest=model.distilled_,
            ensemble=model.oracle,
            meta={
                "model": "iguard",
                "flows": args.flows,
                "seed": args.seed,
                "pkt_count_threshold": 8,
                "timeout": 5.0,
            },
        )
        print(f"saved model bundle to {args.bundle}")
    return 0


def _watch_metrics(url: str, interval: float, iterations: int, max_events: int) -> int:
    """Poll a live ops endpoint's ``/metrics`` and render each snapshot.

    The snapshot document is report-shaped, so the saved-file renderer
    works on it unchanged; the ``ops`` block the endpoint appends is
    summarised on one trailing status line.
    """
    import json
    import time
    import urllib.error
    import urllib.request

    from repro.telemetry import format_report

    base = url if "://" in url else f"http://{url}"
    endpoint = base.rstrip("/")
    if not endpoint.endswith("/metrics"):
        endpoint += "/metrics"
    count = 0
    while True:
        try:
            with urllib.request.urlopen(endpoint, timeout=10) as resp:
                doc = json.loads(resp.read().decode())
        except (urllib.error.URLError, OSError) as exc:
            print(f"watch: {endpoint} unreachable ({exc}); run over?")
            return 1
        ops = doc.pop("ops", {})
        print(format_report(doc, max_events=max_events))
        state = "serving" if ops.get("serving") else "idle"
        last = ops.get("last_chunk") or {}
        last_str = (
            f"  last chunk #{last['index']} {last['n_packets']}pkt "
            f"{last.get('duration_s', 0.0) * 1e3:.1f}ms"
            if "index" in last
            else ""
        )
        print(
            f"[{state}] chunks={ops.get('n_chunks', 0)} "
            f"packets={ops.get('n_packets', 0)} swaps={ops.get('swaps', 0)} "
            f"rollbacks={ops.get('rollbacks', 0)}{last_str}"
        )
        count += 1
        if iterations and count >= iterations:
            return 0
        time.sleep(interval)
        print()


def _cmd_report(args) -> int:
    if args.watch:
        return _watch_metrics(args.watch, args.interval, args.iterations, args.events)
    if args.path is None:
        print("report: a telemetry.json path (or --watch URL) is required")
        return 2
    from repro.telemetry import format_report, load_report

    print(format_report(load_report(args.path), max_events=args.events))
    return 0


_COMMANDS = {
    "attacks": _cmd_attacks,
    "scenario": _cmd_scenario,
    "train": _cmd_train,
    "evaluate": _cmd_evaluate,
    "deploy": _cmd_deploy,
    "serve": _cmd_serve,
    "resume": _cmd_resume,
    "export": _cmd_export,
    "report": _cmd_report,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Parse arguments and dispatch to the subcommand; returns exit code."""
    args = _build_parser().parse_args(argv)
    handler = _COMMANDS[args.command]
    telemetry_path = getattr(args, "telemetry", None)
    if telemetry_path:
        from repro.telemetry import run_report

        meta = {
            k: v for k, v in vars(args).items() if k != "telemetry" and v is not None
        }
        with run_report(telemetry_path, meta=meta):
            code = handler(args)
        print(f"telemetry report written to {telemetry_path}")
        return code
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())
