"""Conventional Isolation Forest — the paper's baseline model.

Ensemble of t iTrees on Ψ-sized sub-samples.  The anomaly score of a
sample x is ``2^(−E(h(x)) / c(Ψ))`` where E(h(x)) is the mean path
length over the trees and c(·) the BST normaliser (paper §3.1, fn 5).

Thresholding follows the contamination convention: τ is placed at the
(1 − contamination) quantile of the *training* scores, and samples with
score above τ are labelled malicious.  (The paper's Eq. writes
``1{score(x) < τ}`` but with the standard score definition anomalies
have *high* scores; we keep the standard orientation so all metrics read
the usual way — only the orientation of τ differs, not the model.)
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro.forest.itree import IsolationTree, average_path_length
from repro.utils.rng import SeedLike, as_rng, spawn_seeds
from repro.utils.validation import check_2d, check_fitted, check_probability


class IsolationForest:
    """Conventional iForest anomaly detector.

    Parameters
    ----------
    n_trees:
        t — ensemble size.
    subsample_size:
        Ψ — per-tree sub-sample size (capped at the training-set size).
    contamination:
        Estimated anomalous fraction; sets the decision threshold τ from
        the training score distribution.
    max_depth:
        Height cap; defaults to ⌈log2 Ψ⌉.
    seed:
        Seed for sub-sampling and tree construction.
    """

    def __init__(
        self,
        n_trees: int = 100,
        subsample_size: int = 256,
        contamination: float = 0.1,
        max_depth: Optional[int] = None,
        seed: SeedLike = None,
    ) -> None:
        if n_trees < 1:
            raise ValueError(f"n_trees must be >= 1, got {n_trees}")
        if subsample_size < 2:
            raise ValueError(f"subsample_size must be >= 2, got {subsample_size}")
        check_probability(contamination, "contamination")
        self.n_trees = n_trees
        self.subsample_size = subsample_size
        self.contamination = contamination
        self.max_depth = max_depth
        self.seed = seed
        self.trees_: Optional[List[IsolationTree]] = None
        self.threshold_: Optional[float] = None
        self.psi_: Optional[int] = None
        self.n_features_: Optional[int] = None

    def fit(self, x: np.ndarray) -> "IsolationForest":
        """Grow t iTrees on Ψ-sized sub-samples and calibrate τ."""
        x = check_2d(x, "X")
        rng = as_rng(self.seed)
        self.n_features_ = x.shape[1]
        self.psi_ = min(self.subsample_size, x.shape[0])
        depth_cap = (
            self.max_depth
            if self.max_depth is not None
            else max(1, math.ceil(math.log2(max(self.psi_, 2))))
        )
        seeds = spawn_seeds(rng, self.n_trees)
        self.trees_ = []
        for tree_seed in seeds:
            tree_rng = as_rng(tree_seed)
            idx = tree_rng.choice(x.shape[0], size=self.psi_, replace=False)
            tree = IsolationTree(max_depth=depth_cap, seed=tree_rng)
            tree.fit(x[idx])
            self.trees_.append(tree)
        train_scores = self.decision_function(x)
        self.threshold_ = float(np.quantile(train_scores, 1.0 - self.contamination))
        return self

    def expected_path_length(self, x: np.ndarray) -> np.ndarray:
        """E(h(x)) over the ensemble — the quantity plotted in Fig 2."""
        check_fitted(self, "trees_")
        x = check_2d(x, "X")
        total = np.zeros(x.shape[0], dtype=float)
        for tree in self.trees_:
            total += tree.path_lengths(x)
        return total / len(self.trees_)

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        """Anomaly score 2^(−E(h)/c(Ψ)) in (0, 1); higher = more anomalous."""
        check_fitted(self, "trees_")
        c = average_path_length(self.psi_)
        if c <= 0:
            c = 1.0
        return np.power(2.0, -self.expected_path_length(x) / c)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """0 = benign, 1 = malicious using the contamination threshold τ."""
        check_fitted(self, "threshold_")
        return (self.decision_function(x) > self.threshold_).astype(int)

    def score_threshold(self) -> float:
        """τ in score space (useful for leaf labelling in rules.py)."""
        check_fitted(self, "threshold_")
        return self.threshold_

    def path_length_threshold(self) -> float:
        """τ translated to expected-path-length space: scores above τ
        correspond to path lengths *below* this value."""
        check_fitted(self, "threshold_")
        c = average_path_length(self.psi_)
        return -c * math.log2(max(self.threshold_, 1e-12))
