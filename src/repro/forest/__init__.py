"""Conventional Isolation Forest substrate (Liu et al. 2008) and its
HorusEye-style deployable (score-labelled) form — the paper's baseline."""

from repro.forest.iforest import IsolationForest
from repro.forest.itree import IsolationTree, TreeNode, average_path_length, harmonic_number
from repro.forest.rules import ScoreLabeledForest

__all__ = [
    "IsolationForest",
    "IsolationTree",
    "ScoreLabeledForest",
    "TreeNode",
    "average_path_length",
    "harmonic_number",
]
