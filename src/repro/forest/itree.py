"""Isolation tree (iTree) — Liu, Ting & Zhou 2008.

An iTree recursively partitions a sub-sample with uniformly random
(feature, split) choices until samples are isolated or the height cap
⌈log2 Ψ⌉ is reached.  Path lengths are adjusted at external nodes by
c(|X_leaf|), the average unsuccessful-search depth of a BST, so that
early-terminated leaves contribute their expected remaining depth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.utils.box import Box
from repro.utils.rng import SeedLike, as_rng

_EULER_GAMMA = 0.5772156649015329


def harmonic_number(i: float) -> float:
    """Approximate i-th harmonic number H(i) = ln(i) + γ (i >= 1)."""
    return math.log(i) + _EULER_GAMMA


def average_path_length(n: int) -> float:
    """c(n): expected path length of an unsuccessful BST search among n
    samples — the normaliser of the iForest anomaly score."""
    if n <= 1:
        return 0.0
    if n == 2:
        return 1.0
    return 2.0 * harmonic_number(n - 1) - 2.0 * (n - 1) / n


@dataclass
class TreeNode:
    """One iTree node; internal nodes carry a (feature, threshold) split."""

    size: int
    depth: int
    feature: Optional[int] = None
    threshold: Optional[float] = None
    left: Optional["TreeNode"] = None
    right: Optional["TreeNode"] = None
    label: Optional[int] = None  # set by distillation / baseline labelling

    @property
    def is_leaf(self) -> bool:
        return self.feature is None

    def path_adjustment(self) -> float:
        """c(size) term added at this leaf."""
        return average_path_length(self.size)


class IsolationTree:
    """A single iTree fitted on a sub-sample.

    Parameters
    ----------
    max_depth:
        Height cap; the canonical value is ⌈log2 Ψ⌉ where Ψ is the
        sub-sample size, supplied by the forest.
    seed:
        RNG seed for the random feature/threshold choices.
    """

    def __init__(self, max_depth: int, seed: SeedLike = None) -> None:
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        self.max_depth = max_depth
        self._rng = as_rng(seed)
        self.root_: Optional[TreeNode] = None
        self.n_features_: Optional[int] = None

    def fit(self, x: np.ndarray) -> "IsolationTree":
        """Recursively partition *x* with random (feature, split) choices."""
        x = np.asarray(x, dtype=float)
        if x.ndim != 2 or x.shape[0] == 0:
            raise ValueError("X must be a non-empty 2-D array")
        self.n_features_ = x.shape[1]
        self.root_ = self._build(x, depth=0)
        return self

    def _build(self, x: np.ndarray, depth: int) -> TreeNode:
        n = x.shape[0]
        if n <= 1 or depth >= self.max_depth:
            return TreeNode(size=n, depth=depth)
        # Random feature among those with spread; terminate if all constant.
        spreads = x.max(axis=0) - x.min(axis=0)
        candidates = np.flatnonzero(spreads > 0)
        if candidates.size == 0:
            return TreeNode(size=n, depth=depth)
        feature = int(candidates[self._rng.integers(candidates.size)])
        lo = float(x[:, feature].min())
        hi = float(x[:, feature].max())
        threshold = float(self._rng.uniform(lo, hi))
        mask = x[:, feature] < threshold
        if not mask.any() or mask.all():
            # Degenerate draw (can happen with discrete data); isolate here.
            return TreeNode(size=n, depth=depth)
        node = TreeNode(size=n, depth=depth, feature=feature, threshold=threshold)
        node.left = self._build(x[mask], depth + 1)
        node.right = self._build(x[~mask], depth + 1)
        return node

    def path_lengths(self, x: np.ndarray) -> np.ndarray:
        """h(x) for each row: termination depth plus c(leaf size)."""
        if self.root_ is None:
            raise RuntimeError("IsolationTree is not fitted")
        x = np.asarray(x, dtype=float)
        out = np.empty(x.shape[0], dtype=float)
        self._descend(self.root_, x, np.arange(x.shape[0]), out)
        return out

    def _descend(
        self, node: TreeNode, x: np.ndarray, idx: np.ndarray, out: np.ndarray
    ) -> None:
        if node.is_leaf:
            out[idx] = node.depth + node.path_adjustment()
            return
        mask = x[idx, node.feature] < node.threshold
        if mask.any():
            self._descend(node.left, x, idx[mask], out)
        if (~mask).any():
            self._descend(node.right, x, idx[~mask], out)

    def leaf_for(self, x_row: np.ndarray) -> TreeNode:
        """The leaf node a single sample lands in."""
        if self.root_ is None:
            raise RuntimeError("IsolationTree is not fitted")
        node = self.root_
        while not node.is_leaf:
            node = node.left if x_row[node.feature] < node.threshold else node.right
        return node

    def leaves_for(self, x: np.ndarray) -> List[TreeNode]:
        """Leaf node per row of *x*."""
        x = np.asarray(x, dtype=float)
        return [self.leaf_for(row) for row in x]

    def leaf_labels(self, x: np.ndarray) -> np.ndarray:
        """Vectorised leaf-label lookup (0/1 per row).

        Requires leaves to have been labelled (by distillation or the
        score-threshold baseline); unlabelled leaves count as benign.
        Descends with index arrays — the majority-vote inference hot path.
        """
        if self.root_ is None:
            raise RuntimeError("IsolationTree is not fitted")
        x = np.asarray(x, dtype=float)
        out = np.empty(x.shape[0], dtype=int)
        stack = [(self.root_, np.arange(x.shape[0]))]
        while stack:
            node, idx = stack.pop()
            if idx.size == 0:
                continue
            if node.is_leaf:
                out[idx] = node.label if node.label is not None else 0
                continue
            mask = x[idx, node.feature] < node.threshold
            stack.append((node.left, idx[mask]))
            stack.append((node.right, idx[~mask]))
        return out

    def leaves(self) -> List[Tuple[TreeNode, Box]]:
        """All (leaf, box) pairs; boxes use ±inf outside observed splits."""
        if self.root_ is None:
            raise RuntimeError("IsolationTree is not fitted")
        result: List[Tuple[TreeNode, Box]] = []
        box = Box.full(self.n_features_)
        self._collect_leaves(self.root_, box, result)
        return result

    def _collect_leaves(
        self, node: TreeNode, box: Box, out: List[Tuple[TreeNode, Box]]
    ) -> None:
        if node.is_leaf:
            out.append((node, box))
            return
        left_box, right_box = box.split(node.feature, node.threshold)
        self._collect_leaves(node.left, left_box, out)
        self._collect_leaves(node.right, right_box, out)

    def split_boundaries(self) -> List[List[float]]:
        """Per-feature sorted lists of thresholds used by internal nodes."""
        if self.root_ is None:
            raise RuntimeError("IsolationTree is not fitted")
        bounds: List[List[float]] = [[] for _ in range(self.n_features_)]
        stack = [self.root_]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                continue
            bounds[node.feature].append(node.threshold)
            stack.extend([node.left, node.right])
        return [sorted(set(b)) for b in bounds]

    def max_leaf_depth(self) -> int:
        """Deepest leaf (pipeline-stage proxy for the switch model)."""
        best = 0
        stack = [self.root_]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                best = max(best, node.depth)
            else:
                stack.extend([node.left, node.right])
        return best

    def n_leaves(self) -> int:
        count = 0
        stack = [self.root_]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                count += 1
            else:
                stack.extend([node.left, node.right])
        return count
