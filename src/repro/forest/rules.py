"""Score-labelled iForest — the HorusEye-style deployable baseline.

HorusEye [15] deploys a conventional iForest in the data plane by
converting its leaves into rules: a leaf is anomalous when the path
length it implies falls below the score threshold.  This module wraps a
fitted :class:`~repro.forest.iforest.IsolationForest` into the same
labelled-forest interface iGuard's distilled forest exposes
(``predict`` / ``vote_fraction`` / ``split_boundaries`` /
``labeled_leaves``), so the one rule compiler in :mod:`repro.core.rules`
serves both models and the Table 1 resource comparison is apples to
apples.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.forest.iforest import IsolationForest
from repro.forest.itree import IsolationTree, TreeNode
from repro.utils.box import Box
from repro.utils.validation import check_2d, check_fitted


class ScoreLabeledForest:
    """A conventional iForest with leaves labelled by the score threshold.

    Each leaf's implied path length is ``depth + c(size)``.  Leaves whose
    implied path length is below the forest's path-length threshold are
    labelled malicious (short path = easily isolated = anomalous); the
    ensemble predicts by majority vote across trees, which is exactly the
    semantics of deploying per-leaf rules in a switch.
    """

    def __init__(self, forest: IsolationForest) -> None:
        check_fitted(forest, "trees_")
        check_fitted(forest, "threshold_")
        self.forest = forest
        self.n_features_ = forest.n_features_
        self._label_leaves()

    def _label_leaves(self) -> None:
        cutoff = self.forest.path_length_threshold()
        for tree in self.forest.trees_:
            for leaf, _box in tree.leaves():
                implied = leaf.depth + leaf.path_adjustment()
                leaf.label = int(implied < cutoff)

    @property
    def trees_(self) -> List[IsolationTree]:
        return self.forest.trees_

    def vote_fraction(self, x: np.ndarray) -> np.ndarray:
        """Fraction of trees voting malicious per sample (score in [0,1])."""
        x = check_2d(x, "X")
        votes = np.zeros(x.shape[0], dtype=float)
        for tree in self.trees_:
            votes += tree.leaf_labels(x)
        return votes / len(self.trees_)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Majority vote over per-tree leaf labels (1 = malicious)."""
        return (self.vote_fraction(x) > 0.5).astype(int)

    def labeled_leaves(self) -> List[List[Tuple[Box, int]]]:
        """Per tree, every (box, label) pair."""
        return [
            [(box, leaf.label) for leaf, box in tree.leaves()] for tree in self.trees_
        ]

    def split_boundaries(self) -> List[List[float]]:
        """Per-feature sorted union of split thresholds across all trees."""
        merged: List[set] = [set() for _ in range(self.n_features_)]
        for tree in self.trees_:
            for feature, values in enumerate(tree.split_boundaries()):
                merged[feature].update(values)
        return [sorted(values) for values in merged]

    def max_depth(self) -> int:
        """Deepest leaf across trees (stage-count proxy)."""
        return max(tree.max_leaf_depth() for tree in self.trees_)

    def n_leaves(self) -> int:
        """Total leaf count across trees."""
        return sum(tree.n_leaves() for tree in self.trees_)
