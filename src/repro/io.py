"""Versioned artifact persistence — round-trip trained models to disk.

The control plane's lifecycle (train → compile → quantise → install,
then retrain and hot-swap at runtime) needs its artifacts to survive a
process: the runtime keeps previous generations for rollback, `repro
export` ships a trained bundle, and `repro deploy --model PATH` installs
one without retraining.  This module round-trips every deployable
object:

* :class:`~repro.core.rules.QuantizedRuleSet` and the fitted
  :class:`~repro.features.scaling.IntegerQuantizer` that produces its
  match keys — JSON.  The quantizer fingerprint is preserved, so a
  reloaded (rules, quantizer) pair still passes the pipeline's
  install-time checks.
* The distilled AE-guided forest
  (:class:`~repro.core.distillation.DistilledForest`) — JSON tree dump
  with leaf labels; reloaded forests predict/vote but are not refittable
  (the oracle is not stored with them).
* The :class:`~repro.nn.ensemble.AutoencoderEnsemble` — a single NPZ of
  layer weights, scaler domains, and thresholds (no pickle).

A *model bundle* is a directory with a ``manifest.json`` naming the
parts; :func:`save_model_bundle` / :func:`load_model_bundle` are the
entry points, with per-object helpers underneath.  Every file carries
``"schema": "repro.io/v1"`` and a ``kind`` tag; loaders reject files
with the wrong one instead of mis-parsing them.

Loaders normalise *every* failure mode — missing file, truncated or
garbled JSON/NPZ, wrong schema or kind, manifest naming absent parts —
to a single :class:`BundleError` carrying the offending path, so
callers (the CLI's ``--model``, the runtime's rollback path) need
exactly one except clause and the error message always says which file
to look at.
"""

from __future__ import annotations

import json
import zipfile
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro.core.deployment import SwitchArtifacts
from repro.core.distillation import DistilledForest
from repro.core.guided_forest import GuidedIsolationForest
from repro.core.guided_tree import GuidedIsolationTree, GuidedTreeNode
from repro.core.rules import QuantizedRule, QuantizedRuleSet
from repro.features.scaling import IntegerQuantizer, MinMaxScaler
from repro.nn.autoencoder import Autoencoder, MagnifierAutoencoder
from repro.nn.ensemble import AutoencoderEnsemble
from repro.nn.network import MLP
from repro.telemetry import get_registry
from repro.utils.box import Box

SCHEMA = "repro.io/v1"

PathLike = Union[str, Path]

#: Autoencoder classes a stored ensemble may name.  Reload refuses
#: anything else rather than instantiating arbitrary names.
_AE_CLASSES = {
    "Autoencoder": Autoencoder,
    "MagnifierAutoencoder": MagnifierAutoencoder,
}


class BundleError(ValueError):
    """A persisted artifact could not be loaded.

    Raised for every load-side failure (missing file, truncated or
    garbled content, schema/kind mismatch, incomplete bundle) with the
    offending path both in the message and on :attr:`path`.  Subclasses
    :class:`ValueError` so pre-existing ``except ValueError`` handlers
    keep working.
    """

    def __init__(self, path, problem: str) -> None:
        self.path = str(path)
        super().__init__(f"{self.path}: {problem}")


@contextmanager
def _loading(path, what: str):
    """Convert any load failure under this block into a BundleError.

    A BundleError raised by a nested loader passes through untouched —
    it already names the innermost offending file.
    """
    try:
        yield
    except BundleError:
        raise
    except FileNotFoundError as err:
        raise BundleError(path, f"missing {what}") from err
    except (OSError, ValueError, KeyError, TypeError, zipfile.BadZipFile) as err:
        raise BundleError(path, f"cannot load {what}: {err}") from err


def _check_doc(doc: dict, kind: str, source: str) -> None:
    if not isinstance(doc, dict) or doc.get("schema") != SCHEMA:
        raise ValueError(f"{source} is not a {SCHEMA} document")
    if doc.get("kind") != kind:
        raise ValueError(f"{source} holds a {doc.get('kind')!r}, expected {kind!r}")


def _write_json(path: Path, doc: dict) -> None:
    # allow_nan keeps ±Infinity boundaries (unbounded box dimensions)
    # round-tripping; json reads them back as float('inf').
    path.write_text(json.dumps(doc, indent=2, allow_nan=True) + "\n")


def _read_json(path: Path, kind: str) -> dict:
    path = Path(path)
    with _loading(path, f"{kind} document"):
        doc = json.loads(path.read_text())
        _check_doc(doc, kind, str(path))
    return doc


# --------------------------------------------------------------------------
# Quantizer and quantised rules (JSON)
# --------------------------------------------------------------------------


def quantizer_to_dict(quantizer: IntegerQuantizer) -> dict:
    if quantizer.data_min_ is None:
        raise ValueError("cannot serialise an unfitted quantizer")
    return {
        "schema": SCHEMA,
        "kind": "integer_quantizer",
        "bits": quantizer.bits,
        "space": quantizer.space,
        # Stored in warped space, exactly as fitted, so the reloaded
        # codebook (and its fingerprint) is bit-identical.
        "data_min": [float(v) for v in np.asarray(quantizer.data_min_)],
        "data_max": [float(v) for v in np.asarray(quantizer.data_max_)],
    }


def quantizer_from_dict(doc: dict, source: str = "document") -> IntegerQuantizer:
    _check_doc(doc, "integer_quantizer", source)
    quantizer = IntegerQuantizer(bits=int(doc["bits"]), space=doc["space"])
    quantizer.data_min_ = np.asarray(doc["data_min"], dtype=float)
    quantizer.data_max_ = np.asarray(doc["data_max"], dtype=float)
    return quantizer


def ruleset_to_dict(rules: QuantizedRuleSet) -> dict:
    return {
        "schema": SCHEMA,
        "kind": "quantized_ruleset",
        "bits": rules.bits,
        "default_label": rules.default_label,
        "quantizer_fingerprint": rules.quantizer_fingerprint,
        "rules": [
            {"lows": list(r.lows), "highs": list(r.highs), "label": r.label}
            for r in rules.rules
        ],
    }


def ruleset_from_dict(doc: dict, source: str = "document") -> QuantizedRuleSet:
    _check_doc(doc, "quantized_ruleset", source)
    return QuantizedRuleSet(
        [
            QuantizedRule(
                lows=tuple(int(v) for v in r["lows"]),
                highs=tuple(int(v) for v in r["highs"]),
                label=int(r["label"]),
            )
            for r in doc["rules"]
        ],
        bits=int(doc["bits"]),
        default_label=int(doc["default_label"]),
        quantizer_fingerprint=doc.get("quantizer_fingerprint"),
    )


# --------------------------------------------------------------------------
# Distilled guided forest (JSON)
# --------------------------------------------------------------------------


def _box_to_obj(box: Optional[Box]) -> Optional[dict]:
    if box is None:
        return None
    return {"lows": [float(v) for v in box.lows], "highs": [float(v) for v in box.highs]}


def _box_from_obj(obj: Optional[dict]) -> Optional[Box]:
    if obj is None:
        return None
    return Box(tuple(float(v) for v in obj["lows"]), tuple(float(v) for v in obj["highs"]))


def _node_to_obj(node: GuidedTreeNode) -> dict:
    obj = {
        "size": node.size,
        "depth": node.depth,
        "feature": node.feature,
        "threshold": node.threshold,
        "label": node.label,
        "malicious_fraction": node.malicious_fraction,
        "box": _box_to_obj(node.box),
    }
    if node.left is not None:
        obj["left"] = _node_to_obj(node.left)
    if node.right is not None:
        obj["right"] = _node_to_obj(node.right)
    return obj


def _node_from_obj(obj: dict) -> GuidedTreeNode:
    return GuidedTreeNode(
        size=int(obj["size"]),
        depth=int(obj["depth"]),
        feature=None if obj["feature"] is None else int(obj["feature"]),
        threshold=None if obj["threshold"] is None else float(obj["threshold"]),
        left=_node_from_obj(obj["left"]) if "left" in obj else None,
        right=_node_from_obj(obj["right"]) if "right" in obj else None,
        label=None if obj["label"] is None else int(obj["label"]),
        box=_box_from_obj(obj.get("box")),
        malicious_fraction=(
            None
            if obj["malicious_fraction"] is None
            else float(obj["malicious_fraction"])
        ),
    )


def forest_to_dict(forest: DistilledForest) -> dict:
    """Serialise a distilled forest: hyperparameters + full tree dumps.

    The oracle ensemble is deliberately not part of this document (it
    has its own NPZ form); a reloaded forest predicts and compiles to
    rules, but re-distilling it needs a live oracle again.
    """
    inner = forest.forest
    return {
        "schema": SCHEMA,
        "kind": "distilled_forest",
        "distilled": forest.distilled_,
        "params": {
            "n_trees": inner.n_trees,
            "subsample_size": inner.subsample_size,
            "k_aug": inner.k_aug,
            "tau_split": inner.tau_split,
            "max_depth": inner.max_depth,
            "max_candidates_per_feature": inner.max_candidates_per_feature,
            "augment_mode": inner.augment_mode,
        },
        "n_features": inner.n_features_,
        "psi": inner.psi_,
        "feature_box": _box_to_obj(inner.feature_box_),
        "trees": [
            {
                "max_depth": tree.max_depth,
                "root": _node_to_obj(tree.root_),
            }
            for tree in inner.trees_
        ],
    }


def forest_from_dict(doc: dict, source: str = "document") -> DistilledForest:
    _check_doc(doc, "distilled_forest", source)
    params = doc["params"]
    inner = GuidedIsolationForest(
        n_trees=int(params["n_trees"]),
        subsample_size=int(params["subsample_size"]),
        k_aug=int(params["k_aug"]),
        tau_split=float(params["tau_split"]),
        max_depth=None if params["max_depth"] is None else int(params["max_depth"]),
        max_candidates_per_feature=int(params["max_candidates_per_feature"]),
        augment_mode=params["augment_mode"],
    )
    inner.n_features_ = int(doc["n_features"])
    inner.psi_ = int(doc["psi"])
    inner.feature_box_ = _box_from_obj(doc["feature_box"])
    inner.trees_ = []
    for tree_doc in doc["trees"]:
        tree = GuidedIsolationTree(
            oracle=None,
            max_depth=int(tree_doc["max_depth"]),
            k_aug=inner.k_aug,
            tau_split=inner.tau_split,
            max_candidates_per_feature=inner.max_candidates_per_feature,
            augment_mode=inner.augment_mode,
        )
        tree.root_ = _node_from_obj(tree_doc["root"])
        tree.n_features_ = inner.n_features_
        tree.feature_box_ = inner.feature_box_
        inner.trees_.append(tree)
    forest = DistilledForest(inner)
    forest.distilled_ = bool(doc["distilled"])
    return forest


# --------------------------------------------------------------------------
# Autoencoder ensemble (NPZ, no pickle)
# --------------------------------------------------------------------------


def save_ensemble(path: PathLike, ensemble: AutoencoderEnsemble) -> Path:
    """Store a fitted ensemble as a single NPZ.

    Layout: a JSON config string (member classes and shapes) plus flat
    arrays ``m{i}_layer{j}_W`` / ``_b``, ``m{i}_scaler_min`` / ``_max``,
    and the ensemble-level weight/threshold vectors.  No object arrays,
    so loading never needs ``allow_pickle``.
    """
    if ensemble.thresholds_ is None:
        raise ValueError("cannot serialise an uncalibrated ensemble")
    members = []
    arrays: Dict[str, np.ndarray] = {
        "weights": np.asarray(ensemble.weights, dtype=float),
        "thresholds": np.asarray(ensemble.thresholds_, dtype=float),
        "base_thresholds": np.asarray(ensemble.base_thresholds_, dtype=float),
    }
    for i, ae in enumerate(ensemble.autoencoders):
        cls = type(ae).__name__
        if cls not in _AE_CLASSES:
            raise ValueError(f"cannot serialise autoencoder of type {cls}")
        if ae.net_ is None or ae.scaler_ is None:
            raise ValueError(f"ensemble member {i} is not fitted")
        members.append(
            {
                "class": cls,
                "hidden": list(ae.hidden),
                "epochs": ae.epochs,
                "batch_size": ae.batch_size,
                "lr": ae.lr,
                "log_scale": ae.log_scale,
                "n_layers": len(ae.net_.layers),
                "activations": [layer.activation for layer in ae.net_.layers],
            }
        )
        arrays[f"m{i}_scaler_min"] = np.asarray(ae.scaler_.data_min_, dtype=float)
        arrays[f"m{i}_scaler_max"] = np.asarray(ae.scaler_.data_max_, dtype=float)
        for j, layer in enumerate(ae.net_.layers):
            arrays[f"m{i}_layer{j}_W"] = np.asarray(layer.weights, dtype=float)
            arrays[f"m{i}_layer{j}_b"] = np.asarray(layer.bias, dtype=float)
    config = {
        "schema": SCHEMA,
        "kind": "autoencoder_ensemble",
        "threshold_quantile": ensemble.threshold_quantile,
        "threshold_margin": ensemble.threshold_margin,
        "bootstrap": ensemble.bootstrap,
        "members": members,
    }
    arrays["config"] = np.array(json.dumps(config))
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "wb") as fh:
        np.savez(fh, **arrays)
    return path


def load_ensemble(path: PathLike) -> AutoencoderEnsemble:
    """Reload an ensemble stored by :func:`save_ensemble`.

    The result scores and predicts identically to the saved one; calling
    ``fit`` again retrains it from scratch like any fresh ensemble.
    """
    path = Path(path)
    with _loading(path, "autoencoder ensemble"), np.load(path) as data:
        config = json.loads(str(data["config"]))
        _check_doc(config, "autoencoder_ensemble", str(path))
        members = []
        for i, m in enumerate(config["members"]):
            cls = _AE_CLASSES.get(m["class"])
            if cls is None:
                raise ValueError(f"{path}: unknown autoencoder class {m['class']!r}")
            kwargs = {
                "epochs": int(m["epochs"]),
                "batch_size": int(m["batch_size"]),
                "lr": float(m["lr"]),
                "log_scale": bool(m["log_scale"]),
            }
            hidden = tuple(int(h) for h in m["hidden"])
            if cls is MagnifierAutoencoder:
                ae = cls(encoder_hidden=hidden, **kwargs)
            else:
                ae = cls(hidden=hidden, **kwargs)
            scaler = MinMaxScaler()
            scaler.data_min_ = np.asarray(data[f"m{i}_scaler_min"], dtype=float)
            scaler.data_max_ = np.asarray(data[f"m{i}_scaler_max"], dtype=float)
            ae.scaler_ = scaler
            n_features = int(data[f"m{i}_layer0_W"].shape[0])
            sizes = ae._layer_sizes(n_features)
            net = MLP(sizes, list(m["activations"]), seed=0)
            if len(net.layers) != int(m["n_layers"]):
                raise ValueError(
                    f"{path}: member {i} layer count mismatch "
                    f"({len(net.layers)} rebuilt vs {m['n_layers']} stored)"
                )
            for j, layer in enumerate(net.layers):
                layer.weights = np.array(data[f"m{i}_layer{j}_W"], dtype=float)
                layer.bias = np.array(data[f"m{i}_layer{j}_b"], dtype=float)
            ae.net_ = net
            members.append(ae)
        ensemble = AutoencoderEnsemble(
            autoencoders=members,
            weights=np.asarray(data["weights"], dtype=float),
            threshold_quantile=float(config["threshold_quantile"]),
            threshold_margin=float(config["threshold_margin"]),
            bootstrap=bool(config["bootstrap"]),
        )
        ensemble.thresholds_ = np.asarray(data["thresholds"], dtype=float)
        ensemble.base_thresholds_ = np.asarray(data["base_thresholds"], dtype=float)
    return ensemble


# --------------------------------------------------------------------------
# Model bundles (directory with manifest)
# --------------------------------------------------------------------------


@dataclass
class ModelBundle:
    """A reloaded bundle: install-ready artifacts plus optional models."""

    artifacts: SwitchArtifacts
    forest: Optional[DistilledForest] = None
    ensemble: Optional[AutoencoderEnsemble] = None
    meta: Dict = field(default_factory=dict)


def is_model_bundle(path: PathLike) -> bool:
    """True when *path* is a directory holding a bundle manifest."""
    return (Path(path) / "manifest.json").is_file()


def save_model_bundle(
    directory: PathLike,
    artifacts: SwitchArtifacts,
    forest: Optional[DistilledForest] = None,
    ensemble: Optional[AutoencoderEnsemble] = None,
    meta: Optional[Dict] = None,
) -> Path:
    """Write a bundle directory: manifest + one file per artifact.

    ``fl_rules``/``fl_quantizer`` are always present; PL rules, the
    forest, and the ensemble are included when given.  The manifest's
    ``files`` map names exactly what was written, so loaders (and
    humans) need no directory listing.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    files: Dict[str, str] = {}

    _write_json(directory / "fl_rules.json", ruleset_to_dict(artifacts.fl_rules))
    files["fl_rules"] = "fl_rules.json"
    _write_json(
        directory / "fl_quantizer.json", quantizer_to_dict(artifacts.fl_quantizer)
    )
    files["fl_quantizer"] = "fl_quantizer.json"
    if artifacts.pl_rules is not None:
        _write_json(directory / "pl_rules.json", ruleset_to_dict(artifacts.pl_rules))
        files["pl_rules"] = "pl_rules.json"
        _write_json(
            directory / "pl_quantizer.json", quantizer_to_dict(artifacts.pl_quantizer)
        )
        files["pl_quantizer"] = "pl_quantizer.json"
    if forest is not None:
        _write_json(directory / "forest.json", forest_to_dict(forest))
        files["forest"] = "forest.json"
    if ensemble is not None:
        save_ensemble(directory / "ensemble.npz", ensemble)
        files["ensemble"] = "ensemble.npz"

    manifest = {
        "schema": SCHEMA,
        "kind": "model_bundle",
        "files": files,
        "meta": dict(meta or {}),
    }
    _write_json(directory / "manifest.json", manifest)
    registry = get_registry()
    if registry.enabled:
        registry.counter("io.bundles_saved").inc()
        registry.event("io.bundle_saved", path=str(directory), files=sorted(files))
    return directory


def load_model_bundle(directory: PathLike) -> ModelBundle:
    """Reload a bundle written by :func:`save_model_bundle`.

    Any failure — missing manifest, missing/garbled part, schema or
    kind mismatch — raises :class:`BundleError` naming the offending
    file.
    """
    directory = Path(directory)
    with _loading(directory, "model bundle"):
        manifest = _read_json(directory / "manifest.json", "model_bundle")
        files = manifest["files"]

        fl_rules = ruleset_from_dict(
            _read_json(directory / files["fl_rules"], "quantized_ruleset"),
            files["fl_rules"],
        )
        fl_quantizer = quantizer_from_dict(
            _read_json(directory / files["fl_quantizer"], "integer_quantizer"),
            files["fl_quantizer"],
        )
        pl_rules = pl_quantizer = None
        if "pl_rules" in files:
            pl_rules = ruleset_from_dict(
                _read_json(directory / files["pl_rules"], "quantized_ruleset"),
                files["pl_rules"],
            )
            pl_quantizer = quantizer_from_dict(
                _read_json(directory / files["pl_quantizer"], "integer_quantizer"),
                files["pl_quantizer"],
            )
        forest = None
        if "forest" in files:
            forest = forest_from_dict(
                _read_json(directory / files["forest"], "distilled_forest"),
                files["forest"],
            )
        ensemble = None
        if "ensemble" in files:
            ensemble = load_ensemble(directory / files["ensemble"])

    registry = get_registry()
    if registry.enabled:
        registry.counter("io.bundles_loaded").inc()
    return ModelBundle(
        artifacts=SwitchArtifacts(
            fl_rules=fl_rules,
            fl_quantizer=fl_quantizer,
            pl_rules=pl_rules,
            pl_quantizer=pl_quantizer,
        ),
        forest=forest,
        ensemble=ensemble,
        meta=dict(manifest.get("meta", {})),
    )
