"""iGuard — the paper's end-to-end model (train → distil → rules).

:class:`IGuard` wires the pieces together:

1. fit (or accept) an autoencoder ensemble on benign features (§3.2.1);
2. grow the guided isolation forest with the ensemble as oracle;
3. distil ensemble knowledge into leaf labels (§3.2.2);
4. compile the labelled forest into whitelist rules (§3.2.3).

Inference goes through the distilled forest's majority vote; rule-based
inference (what the switch executes) is available via :meth:`to_rules`
and should agree with the forest to within the consistency C.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.consistency import consistency as _consistency
from repro.core.distillation import DistilledForest
from repro.core.guided_forest import GuidedIsolationForest
from repro.core.hypercube import compile_ruleset
from repro.core.rules import RuleSet
from repro.nn.ensemble import AutoencoderEnsemble
from repro.utils.box import Box
from repro.utils.rng import SeedLike, as_rng, spawn_seeds
from repro.utils.transforms import signed_expm1, signed_log1p
from repro.utils.validation import check_2d, check_fitted


class _LogSpaceOracle:
    """Adapter exposing a raw-feature oracle to log-space tree code.

    Guided trees grow in signed-log feature space (see
    :mod:`repro.utils.transforms`); the autoencoder ensemble keeps its
    raw-feature interface, so tree-side queries are inverse-transformed
    before reaching it.
    """

    def __init__(self, oracle, distil_margin: Optional[float] = None) -> None:
        self._oracle = oracle
        self._distil_margin = distil_margin

    def predict(self, x_log: np.ndarray) -> np.ndarray:
        return self._oracle.predict(signed_expm1(x_log))

    def expected_errors(self, x_log: np.ndarray) -> np.ndarray:
        return self._oracle.expected_errors(signed_expm1(x_log))

    def label_from_expected_errors(self, expected: np.ndarray) -> int:
        return self._oracle.label_from_expected_errors(
            expected, margin=self._distil_margin
        )


class IGuard:
    """Autoencoder-distilled isolation forest for malicious traffic
    detection, deployable as switch whitelist rules.

    Parameters
    ----------
    n_trees / subsample_size:
        t and Ψ of the forest (grid-search dimensions, §4.1).
    k_aug:
        Augmented points per node/leaf (k of the grid search).
    tau_split:
        Purity stopping ratio (fn 8; 1e-2 "worked well").
    threshold_quantile:
        Benign-error quantile for the ensemble thresholds T_u (the T of
        the grid search) when the default oracle is constructed.
    oracle:
        Optional pre-built (fitted or unfitted)
        :class:`~repro.nn.ensemble.AutoencoderEnsemble`; pass a fitted
        one with ``oracle_prefit=True`` to reuse across grid-search
        points — training the ensemble once per dataset is the dominant
        cost.
    """

    def __init__(
        self,
        n_trees: int = 25,
        subsample_size: int = 128,
        k_aug: int = 32,
        tau_split: float = 1e-2,
        threshold_quantile: float = 0.98,
        threshold_margin: float = 2.0,
        distil_margin: float = 1.2,
        oracle: Optional[AutoencoderEnsemble] = None,
        oracle_prefit: bool = False,
        max_candidates_per_feature: int = 32,
        augment_mode: str = "mixture",
        max_depth: Optional[int] = None,
        seed: SeedLike = None,
    ) -> None:
        self.n_trees = n_trees
        self.subsample_size = subsample_size
        self.k_aug = k_aug
        self.tau_split = tau_split
        self.threshold_quantile = threshold_quantile
        self.threshold_margin = threshold_margin
        self.distil_margin = distil_margin
        self.oracle = oracle
        self.oracle_prefit = oracle_prefit
        self.max_candidates_per_feature = max_candidates_per_feature
        self.augment_mode = augment_mode
        self.max_depth = max_depth
        self.seed = seed
        self.forest_: Optional[GuidedIsolationForest] = None
        self.distilled_: Optional[DistilledForest] = None
        self._x_log_train: Optional[np.ndarray] = None

    def fit(self, x_benign: np.ndarray) -> "IGuard":
        """Full training pipeline: oracle → guided forest → distillation."""
        x = check_2d(x_benign, "x_benign")
        rng = as_rng(self.seed)
        oracle_seed, forest_seed, distil_seed = spawn_seeds(rng, 3)

        if self.oracle is None:
            self.oracle = AutoencoderEnsemble(
                threshold_quantile=self.threshold_quantile,
                threshold_margin=self.threshold_margin,
                seed=oracle_seed,
            )
        if not self.oracle_prefit:
            self.oracle.fit(x)
        log_oracle = _LogSpaceOracle(self.oracle, distil_margin=self.distil_margin)

        # Trees grow in signed-log feature space, where the benign
        # manifold's proportional bands are axis-alignable; rules compiled
        # there convert back to raw thresholds exactly (monotone map).
        x_log = signed_log1p(x)
        self._x_log_train = x_log
        self.forest_ = GuidedIsolationForest(
            n_trees=self.n_trees,
            subsample_size=self.subsample_size,
            k_aug=self.k_aug,
            tau_split=self.tau_split,
            max_candidates_per_feature=self.max_candidates_per_feature,
            augment_mode=self.augment_mode,
            max_depth=self.max_depth,
            seed=forest_seed,
        )
        self.forest_.fit(x_log, oracle=log_oracle)

        self.distilled_ = DistilledForest(self.forest_).distil(
            x_log, log_oracle, seed=distil_seed
        )
        return self

    @property
    def feature_box_(self) -> Box:
        check_fitted(self, "forest_")
        return self.forest_.feature_box_

    def vote_fraction(self, x: np.ndarray) -> np.ndarray:
        """Fraction of malicious tree votes (continuous score in [0,1])."""
        check_fitted(self, "distilled_")
        return self.distilled_.vote_fraction(signed_log1p(check_2d(x, "X")))

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Majority-vote verdict: 0 = benign, 1 = malicious."""
        return (self.vote_fraction(x) > 0.5).astype(int)

    def anomaly_scores(self, x: np.ndarray) -> np.ndarray:
        """Detector-contract alias of :meth:`vote_fraction`."""
        return self.vote_fraction(x)

    def to_rules(
        self,
        method: str = "refine",
        max_cells: int = 4096,
        merge: bool = True,
        whitelist_only: bool = True,
        raw_space: bool = True,
        seed: SeedLike = None,
    ) -> RuleSet:
        """Compile the distilled forest into whitelist rules (§3.2.3).

        With ``raw_space=True`` (default) rule boundaries are mapped back
        from log space to raw feature units — the form the switch
        installs and matches packets against.
        """
        check_fitted(self, "distilled_")
        ruleset = compile_ruleset(
            self.distilled_,
            method=method,
            max_cells=max_cells,
            merge=merge,
            whitelist_only=whitelist_only,
            x_ref=self._x_log_train,
            seed=seed,
        )
        if raw_space:
            ruleset = ruleset.transform_boundaries(signed_expm1)
        return ruleset

    def consistency(self, ruleset: RuleSet, x: np.ndarray) -> float:
        """C of §3.2.3 between the distilled forest and *ruleset*.

        *ruleset* must be in raw feature space (the default of
        :meth:`to_rules`).
        """
        check_fitted(self, "distilled_")
        x = check_2d(x, "X")
        return float(np.mean(self.predict(x) == ruleset.predict(x)))
