"""Knowledge distillation from the autoencoder ensemble into iForest
leaves (paper §3.2.2).

For every tree, every training sample is routed to its leaf; each leaf
additionally receives k points sampled from its own feature ranges
(X_aug ~ features_range(leaf)).  The ensemble's expected reconstruction
error over the leaf's sample pool (Eq 5) is thresholded per member and
combined with the ensemble weights into a 0/1 leaf label (Eq 6).

Inference then ignores path lengths entirely: a test sample is routed to
one leaf per tree and the majority vote of leaf labels is the verdict.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.guided_forest import GuidedIsolationForest
from repro.core.guided_tree import GuidedTreeNode, augment_from_box
from repro.telemetry import get_registry
from repro.utils.box import Box
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import check_2d, check_fitted

#: Fidelity lives in [0, 1]: twenty even buckets.
_FIDELITY_EDGES = tuple(i / 20.0 for i in range(1, 20))


class DistilledForest:
    """A guided forest whose leaves carry distilled 0/1 labels.

    Exposes the labelled-forest protocol shared with
    :class:`~repro.forest.rules.ScoreLabeledForest` (``predict`` /
    ``vote_fraction`` / ``labeled_leaves`` / ``split_boundaries``), so
    the rule compiler and the switch harness treat iGuard and the
    baseline identically.
    """

    def __init__(self, forest: GuidedIsolationForest) -> None:
        check_fitted(forest, "trees_")
        self.forest = forest
        self.n_features_ = forest.n_features_
        self.distilled_ = False

    @property
    def trees_(self):
        return self.forest.trees_

    @property
    def feature_box_(self) -> Box:
        return self.forest.feature_box_

    def distil(
        self,
        x_train: np.ndarray,
        oracle,
        k_aug: Optional[int] = None,
        seed: SeedLike = None,
    ) -> "DistilledForest":
        """Label every leaf by expected reconstruction error (Eqs 5-6)."""
        x = check_2d(x_train, "x_train")
        rng = as_rng(seed)
        k = self.forest.k_aug if k_aug is None else k_aug

        # Telemetry: per-round (per-tree) distillation fidelity — the
        # agreement between the tree's distilled leaf labels and the
        # oracle's own verdicts over the training set.  Only computed
        # when a registry is active (the oracle pass is not free).
        registry = get_registry()
        telemetry_on = registry.enabled and hasattr(oracle, "predict")
        if telemetry_on:
            y_oracle = np.asarray(oracle.predict(x)).astype(int)
            fidelity_hist = registry.histogram("distil.tree_fidelity", _FIDELITY_EDGES)
            fidelities = []

        for round_idx, tree in enumerate(self.trees_):
            # Route all training samples to leaves in one pass.
            assignments: Dict[int, List[int]] = {}
            leaf_by_id: Dict[int, GuidedTreeNode] = {}
            for i, row in enumerate(x):
                leaf = tree.leaf_for(row)
                assignments.setdefault(id(leaf), []).append(i)
                leaf_by_id[id(leaf)] = leaf
            for leaf, box in tree.leaves():
                rows = assignments.get(id(leaf), [])
                x_aug = augment_from_box(
                    box.clip(self.feature_box_),
                    k,
                    rng,
                    mode=getattr(tree, "augment_mode", "normal"),
                    x_local=x[rows] if rows else None,
                )
                pool = [x[rows]] if rows else []
                if len(x_aug):
                    pool.append(x_aug)
                if not pool:
                    # k = 0 and no training samples reached this leaf:
                    # fall back to the purity estimate from training.
                    leaf.label = int((leaf.malicious_fraction or 0.0) > 0.5)
                    continue
                x_leaf = np.vstack(pool)
                expected = oracle.expected_errors(x_leaf)  # RE_leaf_u, Eq 5
                leaf.label = oracle.label_from_expected_errors(expected)  # Eq 6
            if telemetry_on:
                fidelity = float(np.mean(tree.leaf_labels(x) == y_oracle))
                fidelities.append(fidelity)
                fidelity_hist.observe(fidelity)
                registry.counter("distil.rounds").inc()
                registry.event(
                    "distil.round", round=round_idx, fidelity=round(fidelity, 6)
                )
        if telemetry_on and fidelities:
            registry.gauge("distil.mean_fidelity").set(float(np.mean(fidelities)))
        self.distilled_ = True
        return self

    def _require_distilled(self) -> None:
        if not self.distilled_:
            raise RuntimeError("call distil() before inference")

    def vote_fraction(self, x: np.ndarray) -> np.ndarray:
        """Fraction of trees whose leaf label is malicious, per sample."""
        self._require_distilled()
        x = check_2d(x, "X")
        votes = np.zeros(x.shape[0], dtype=float)
        for tree in self.trees_:
            votes += tree.leaf_labels(x)
        return votes / len(self.trees_)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Majority vote across trees (paper's iForest inference)."""
        return (self.vote_fraction(x) > 0.5).astype(int)

    def labeled_leaves(self) -> List[List[Tuple[Box, int]]]:
        """Per tree, every (box, label) pair."""
        self._require_distilled()
        return [
            [(box, leaf.label) for leaf, box in tree.leaves()] for tree in self.trees_
        ]

    def split_boundaries(self) -> List[List[float]]:
        return self.forest.split_boundaries()

    def max_depth(self) -> int:
        return self.forest.max_depth_fitted()

    def n_leaves(self) -> int:
        return self.forest.n_leaves()
