"""Model → switch-table compilation entry point (train once, recompile
at will).

The harness (:mod:`repro.eval.harness`) and the online serving runtime
(:mod:`repro.runtime`) both need the same step: take a fitted model,
compile its whitelist rules, and quantise them — together with the
matching PL early-packet rules — into the integer tables the switch
installs.  This module is that single entry point, so an install-time
artifact is produced identically whether it comes from the one-shot
experiment protocol or from a runtime retrain.

The quantiser-fit convention (training rows plus every finite rule
boundary, log-spaced codes) lives here too; see
:func:`rule_domain` for why the boundaries are included.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.early import EarlyPacketModel
from repro.core.rules import QuantizedRuleSet, RuleSet
from repro.features.packet_features import extract_first_packets
from repro.features.scaling import IntegerQuantizer
from repro.utils.rng import SeedLike, as_rng, spawn_seeds


@dataclass(frozen=True)
class SwitchArtifacts:
    """Everything the data plane installs: quantised FL/PL rules and the
    quantisers that produce their match keys.

    This is the unit the runtime stages, swaps, and persists
    (:mod:`repro.io`); the pipeline validates the pairs with its
    install-time checks before they go live.
    """

    fl_rules: QuantizedRuleSet
    fl_quantizer: IntegerQuantizer
    pl_rules: Optional[QuantizedRuleSet] = None
    pl_quantizer: Optional[IntegerQuantizer] = None

    @property
    def n_fl_rules(self) -> int:
        return len(self.fl_rules)

    @property
    def n_pl_rules(self) -> int:
        return len(self.pl_rules) if self.pl_rules is not None else 0


def rule_domain(x_train: np.ndarray, ruleset: RuleSet) -> np.ndarray:
    """Training rows plus the finite rule boundaries, for quantiser fit.

    Fitting the codebook over the training data alone would let rule
    edges land outside the fitted domain and collapse onto the sentinel
    codes; including every finite boundary keeps rule edges and
    out-of-distribution traffic quantising distinctly.
    """
    rows = [x_train]
    for rule in ruleset:
        for values in (rule.box.lows, rule.box.highs):
            arr = np.array(values, dtype=float).reshape(1, -1)
            arr = np.where(np.isfinite(arr), arr, np.nan)
            if not np.all(np.isnan(arr)):
                # replace non-finite entries with per-feature train values
                fill = x_train[0]
                arr = np.where(np.isnan(arr), fill, arr)
                rows.append(arr)
    return np.vstack(rows)


def quantize_ruleset(
    ruleset: RuleSet, x_train: np.ndarray, bits: int = 16
) -> Tuple[QuantizedRuleSet, IntegerQuantizer]:
    """Fit a log-spaced quantiser over *x_train* + rule boundaries and
    quantise *ruleset* with it — the install-form (rules, quantizer)
    pair, fingerprint-stamped so the pipeline can verify the match."""
    quantizer = IntegerQuantizer(bits=bits, space="log").fit(
        rule_domain(x_train, ruleset)
    )
    return ruleset.quantize(quantizer), quantizer


def compile_pl_artifacts(
    train_flows: Sequence[Sequence],
    bits: int = 16,
    rule_cells: int = 1024,
    seed: SeedLike = None,
) -> Tuple[QuantizedRuleSet, IntegerQuantizer]:
    """Fit the PL early-packet model on benign flows and quantise its
    rules (§3.3.1 — early packets are scored on PL features only)."""
    early = EarlyPacketModel(seed=seed).fit(train_flows)
    pl_ruleset = early.to_rules(max_cells=rule_cells, seed=seed)
    x_pl, _ = extract_first_packets(train_flows, per_flow=early.packets_per_flow)
    pl_quantizer = IntegerQuantizer(bits=bits, space="log").fit(
        rule_domain(x_pl, pl_ruleset)
    )
    return pl_ruleset.quantize(pl_quantizer), pl_quantizer


def compile_switch_artifacts(
    model,
    x_train: np.ndarray,
    train_flows: Optional[Sequence[Sequence]] = None,
    quantizer_bits: int = 16,
    rule_cells: int = 1024,
    use_pl_model: bool = True,
    seed: SeedLike = None,
) -> SwitchArtifacts:
    """Compile a fitted model into a complete install-ready artifact set.

    Parameters
    ----------
    model:
        Fitted detector exposing ``to_rules(max_cells=..., seed=...)``
        (:class:`~repro.core.iguard.IGuard` or anything matching its
        compile contract).
    x_train:
        FL training features; the quantiser domain is fitted over these
        plus the finite rule boundaries.
    train_flows:
        Benign flows for the PL early-packet model; required when
        *use_pl_model* is true.
    """
    rng = as_rng(seed)
    rule_seed, pl_seed = spawn_seeds(rng, 2)
    ruleset = model.to_rules(max_cells=rule_cells, seed=rule_seed)
    fl_rules, fl_quantizer = quantize_ruleset(ruleset, x_train, bits=quantizer_bits)

    pl_rules = pl_quantizer = None
    if use_pl_model:
        if train_flows is None:
            raise ValueError(
                "use_pl_model=True requires train_flows for the PL early-packet model"
            )
        pl_rules, pl_quantizer = compile_pl_artifacts(
            train_flows, bits=quantizer_bits, rule_cells=rule_cells, seed=pl_seed
        )
    return SwitchArtifacts(
        fl_rules=fl_rules,
        fl_quantizer=fl_quantizer,
        pl_rules=pl_rules,
        pl_quantizer=pl_quantizer,
    )
