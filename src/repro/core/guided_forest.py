"""Autoencoder-guided isolation forest (ensemble of guided iTrees).

Like a conventional iForest, each of the t trees sees a Ψ-sized
sub-sample of the benign training set and is height-capped at
⌈log2 Ψ⌉; unlike a conventional iForest, node expansion is driven by
information gain against the autoencoder ensemble's labels
(:mod:`repro.core.guided_tree`).
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro.core.guided_tree import GuidedIsolationTree
from repro.utils.box import Box
from repro.utils.rng import SeedLike, as_rng, spawn_seeds
from repro.utils.validation import check_2d, check_fitted


class GuidedIsolationForest:
    """Ensemble of t autoencoder-guided iTrees on Ψ-sub-samples.

    Parameters mirror the paper's grid-search dimensions (t, Ψ, k) plus
    τ_split; the oracle (autoencoder ensemble) is supplied at fit time by
    :class:`~repro.core.iguard.IGuard`.
    """

    def __init__(
        self,
        n_trees: int = 25,
        subsample_size: int = 128,
        k_aug: int = 32,
        tau_split: float = 1e-2,
        max_depth: Optional[int] = None,
        max_candidates_per_feature: int = 32,
        augment_mode: str = "mixture",
        seed: SeedLike = None,
    ) -> None:
        if n_trees < 1:
            raise ValueError(f"n_trees must be >= 1, got {n_trees}")
        if subsample_size < 2:
            raise ValueError(f"subsample_size must be >= 2, got {subsample_size}")
        self.n_trees = n_trees
        self.subsample_size = subsample_size
        self.k_aug = k_aug
        self.tau_split = tau_split
        self.max_depth = max_depth
        self.max_candidates_per_feature = max_candidates_per_feature
        self.augment_mode = augment_mode
        self.seed = seed
        self.trees_: Optional[List[GuidedIsolationTree]] = None
        self.n_features_: Optional[int] = None
        self.feature_box_: Optional[Box] = None
        self.psi_: Optional[int] = None

    def fit(self, x: np.ndarray, oracle) -> "GuidedIsolationForest":
        """Grow the forest on benign data *x* guided by *oracle*."""
        x = check_2d(x, "X")
        rng = as_rng(self.seed)
        self.n_features_ = x.shape[1]
        self.psi_ = min(self.subsample_size, x.shape[0])
        # Guided trees are purity-driven: the conventional ⌈log2 Ψ⌉ cap
        # would stop them before τ_split can fire once the feature count
        # exceeds the cap (a path constrains at most one dimension per
        # level).  The default budget allows roughly two cuts per feature
        # — enough to bracket the benign manifold in every dimension —
        # while τ_split remains the operative stopping criterion.
        depth_cap = (
            self.max_depth
            if self.max_depth is not None
            else max(
                math.ceil(math.log2(max(self.psi_, 2))),
                2 * self.n_features_ + 8,
            )
        )
        # Shared outer box padded slightly so that augmentation and rules
        # cover a neighbourhood of the data, not just its convex hull.
        self.feature_box_ = Box.from_data(x, pad=0.05)
        seeds = spawn_seeds(rng, self.n_trees)
        self.trees_ = []
        for tree_seed in seeds:
            tree_rng = as_rng(tree_seed)
            idx = tree_rng.choice(x.shape[0], size=self.psi_, replace=False)
            tree = GuidedIsolationTree(
                oracle=oracle,
                max_depth=depth_cap,
                k_aug=self.k_aug,
                tau_split=self.tau_split,
                max_candidates_per_feature=self.max_candidates_per_feature,
                augment_mode=self.augment_mode,
                seed=tree_rng,
            )
            tree.fit(x[idx], feature_box=self.feature_box_)
            self.trees_.append(tree)
        return self

    def split_boundaries(self) -> List[List[float]]:
        """Per-feature sorted union of split thresholds across trees."""
        check_fitted(self, "trees_")
        merged: List[set] = [set() for _ in range(self.n_features_)]
        for tree in self.trees_:
            for feature, values in enumerate(tree.split_boundaries()):
                merged[feature].update(values)
        return [sorted(v) for v in merged]

    def max_depth_fitted(self) -> int:
        check_fitted(self, "trees_")
        return max(tree.max_leaf_depth() for tree in self.trees_)

    def n_leaves(self) -> int:
        check_fitted(self, "trees_")
        return sum(tree.n_leaves() for tree in self.trees_)
