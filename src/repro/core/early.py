"""Early-packet model (paper §3.3.1, "Early packets are ignored").

Before a flow reaches the packet-count threshold n (or times out), its
FL features are unreliable, so the switch scores early packets with a
conventional iForest trained on packet-level (PL) features only — dst
port, protocol, length, TTL — compiled to its own whitelist rules and
installed alongside the FL rules.  The data plane consults the PL rules
on the brown/orange paths and the FL rules at classification time.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.hypercube import compile_ruleset
from repro.core.rules import RuleSet
from repro.datasets.packet import Packet
from repro.features.packet_features import extract_first_packets, packet_feature_vector
from repro.forest.iforest import IsolationForest
from repro.forest.rules import ScoreLabeledForest
from repro.utils.box import Box
from repro.utils.rng import SeedLike
from repro.utils.validation import check_fitted


class EarlyPacketModel:
    """Conventional iForest over PL features, deployable as rules.

    Parameters mirror the baseline iForest; contamination is kept small
    because early-packet verdicts must not drop benign flow openings.
    """

    def __init__(
        self,
        n_trees: int = 50,
        subsample_size: int = 128,
        contamination: float = 0.02,
        packets_per_flow: int = 3,
        seed: SeedLike = None,
    ) -> None:
        self.packets_per_flow = packets_per_flow
        self.forest = IsolationForest(
            n_trees=n_trees,
            subsample_size=subsample_size,
            contamination=contamination,
            seed=seed,
        )
        self.labeled_: Optional[ScoreLabeledForest] = None
        self.feature_box_: Optional[Box] = None

    def fit(self, benign_flows: Sequence[Sequence[Packet]]) -> "EarlyPacketModel":
        """Train on the first packets of benign flows."""
        x, _y = extract_first_packets(benign_flows, per_flow=self.packets_per_flow)
        self.forest.fit(x)
        self.labeled_ = ScoreLabeledForest(self.forest)
        self.feature_box_ = Box.from_data(x, pad=0.05)
        self._x_train = x
        return self

    def predict_packets(self, packets: Sequence[Packet]) -> np.ndarray:
        """0/1 verdict per packet via the labelled forest."""
        check_fitted(self, "labeled_")
        x = np.vstack([packet_feature_vector(p) for p in packets])
        return self.labeled_.predict(x)

    def to_rules(self, max_cells: int = 1024, seed: SeedLike = None) -> RuleSet:
        """Compile the PL forest into whitelist rules (4-feature boxes)."""
        check_fitted(self, "labeled_")
        self.labeled_.feature_box_ = self.feature_box_
        return compile_ruleset(
            self.labeled_,
            feature_box=self.feature_box_,
            max_cells=max_cells,
            x_ref=self._x_train,
            seed=seed,
        )
