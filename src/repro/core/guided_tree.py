"""Autoencoder-guided isolation tree (paper §3.2.1).

Differences from a conventional iTree, exactly as the paper specifies:

* **Node expansion** — at each node, k extra points are sampled from the
  node's feature ranges (normal distribution centred on the range
  midpoint with quartile-range spread, fn 7) and pooled with the node's
  training samples into X_decision.  The autoencoder ensemble labels
  X_decision; the split (q*, p*) maximises information gain (Eqs 1-4)
  over all candidate (feature, value) pairs.
* **Stopping** — a node becomes a leaf when |X_node| ≤ 1, when the height
  cap ⌈log2 Ψ⌉ is reached, or when the minority/majority class ratio in
  X_decision falls below τ_split (the node is already pure enough for
  distillation to label it reliably, fn 8: τ_split = 1e-2).

Recursion passes only the *training* samples down (augmented points are
per-node decision aids, as in the paper's X_node.left = X_node[q* < p*]).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.forest.itree import TreeNode, average_path_length
from repro.utils.box import Box
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import check_2d


def binary_entropy(p: float) -> float:
    """H(p) in bits, with the 0·log0 = 0 convention (Eq 2)."""
    if p <= 0.0 or p >= 1.0:
        return 0.0
    return -p * math.log2(p) - (1.0 - p) * math.log2(1.0 - p)


def augment_from_box(
    box: Box,
    k: int,
    rng: np.random.Generator,
    mode: str = "normal",
    x_local: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Draw k synthetic points from a node's feature ranges (fn 7).

    ``"normal"`` (the paper's choice): per feature, mean = range midpoint
    and std = quartile range of a uniform over the range (width / 2).
    Samples are clipped back into the box, which concentrates probe mass
    on the box faces and corners — exactly the off-manifold regions the
    autoencoders must veto.  ``"uniform"`` draws uniformly instead.

    ``"mixture"`` splits the budget between box-volume probes (as above)
    and local jitter around the node's own samples *x_local* (std =
    width/20 per feature, clipped to the box).  Local probes straddle the
    manifold boundary, so candidate splits adjacent to the data carry
    high information gain and trees converge to pure leaves in far fewer
    levels than with volume probes alone.
    """
    if k <= 0:
        return np.empty((0, box.n_features))
    lows = np.array(box.lows)
    highs = np.array(box.highs)
    if mode == "uniform":
        return rng.uniform(lows, highs, size=(k, box.n_features))
    mid = (lows + highs) / 2.0
    spread = np.maximum((highs - lows) / 2.0, 1e-12)
    if mode == "normal" or x_local is None or len(x_local) == 0:
        if mode not in ("normal", "mixture"):
            raise ValueError(f"mode must be 'normal', 'uniform' or 'mixture', got {mode!r}")
        samples = rng.normal(mid, spread, size=(k, box.n_features))
        return np.clip(samples, lows, highs)
    if mode != "mixture":
        raise ValueError(f"mode must be 'normal', 'uniform' or 'mixture', got {mode!r}")
    k_volume = k // 2
    k_local = k - k_volume
    volume = rng.normal(mid, spread, size=(k_volume, box.n_features))
    anchor_idx = rng.integers(len(x_local), size=k_local)
    jitter = rng.normal(0.0, np.maximum((highs - lows) / 20.0, 1e-12),
                        size=(k_local, box.n_features))
    local = np.asarray(x_local)[anchor_idx] + jitter
    return np.clip(np.vstack([volume, local]), lows, highs)


def best_split(
    x_decision: np.ndarray,
    labels: np.ndarray,
    max_candidates_per_feature: int = 32,
) -> Optional[Tuple[int, float, float]]:
    """Exhaustive (q, p) search maximising information gain (Eq 4).

    Candidate p values per feature are the midpoints between consecutive
    sorted unique values (subsampled evenly beyond
    *max_candidates_per_feature* to bound work).  Returns
    ``(feature, value, gain)`` or ``None`` when no feature admits a split
    that actually separates samples.
    """
    n = x_decision.shape[0]
    parent_pr = float(labels.mean())
    parent_entropy = binary_entropy(parent_pr)
    best: Optional[Tuple[int, float, float]] = None

    for feature in range(x_decision.shape[1]):
        values = x_decision[:, feature]
        order = np.argsort(values, kind="mergesort")
        sorted_vals = values[order]
        sorted_labels = labels[order]
        # Split positions: indices i where value strictly increases —
        # splitting between i-1 and i separates the samples.
        change = np.flatnonzero(np.diff(sorted_vals) > 0) + 1
        if change.size == 0:
            continue
        if change.size > max_candidates_per_feature:
            picks = np.linspace(0, change.size - 1, max_candidates_per_feature)
            change = change[np.round(picks).astype(int)]
        # Prefix counts of malicious labels.
        mal_prefix = np.concatenate([[0], np.cumsum(sorted_labels)])
        n_left = change.astype(float)
        mal_left = mal_prefix[change].astype(float)
        n_right = n - n_left
        mal_right = mal_prefix[-1] - mal_left

        pr_left = mal_left / n_left
        pr_right = mal_right / n_right
        h_left = np.array([binary_entropy(p) for p in pr_left])
        h_right = np.array([binary_entropy(p) for p in pr_right])
        children = (n_left / n) * h_left + (n_right / n) * h_right
        gains = parent_entropy - children
        idx = int(np.argmax(gains))
        gain = float(gains[idx])
        if best is None or gain > best[2]:
            pos = change[idx]
            split_value = 0.5 * (sorted_vals[pos - 1] + sorted_vals[pos])
            # Guard against float midpoints collapsing onto the left value.
            if split_value <= sorted_vals[pos - 1]:
                split_value = sorted_vals[pos]
            best = (feature, float(split_value), gain)
    return best


@dataclass
class GuidedTreeNode(TreeNode):
    """iTree node carrying its feature-range box and decision-set purity."""

    box: Optional[Box] = None
    malicious_fraction: Optional[float] = None  # of X_decision at this node


class GuidedIsolationTree:
    """One autoencoder-guided iTree.

    Parameters
    ----------
    oracle:
        Fitted :class:`~repro.nn.ensemble.AutoencoderEnsemble` (anything
        with a ``predict(X) -> 0/1`` method works).
    max_depth:
        Height cap (forest passes ⌈log2 Ψ⌉).
    k_aug:
        Augmented points per node (the k of §3.2.1 / grid search).
    tau_split:
        Purity stopping ratio τ_split (fn 8).
    """

    def __init__(
        self,
        oracle,
        max_depth: int,
        k_aug: int = 32,
        tau_split: float = 1e-2,
        max_candidates_per_feature: int = 32,
        augment_mode: str = "mixture",
        seed: SeedLike = None,
    ) -> None:
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        if k_aug < 0:
            raise ValueError(f"k_aug must be >= 0, got {k_aug}")
        if not 0.0 <= tau_split <= 1.0:
            raise ValueError(f"tau_split must be in [0, 1], got {tau_split}")
        self.oracle = oracle
        self.max_depth = max_depth
        self.k_aug = k_aug
        self.tau_split = tau_split
        self.augment_mode = augment_mode
        self.max_candidates_per_feature = max_candidates_per_feature
        self._rng = as_rng(seed)
        self.root_: Optional[GuidedTreeNode] = None
        self.n_features_: Optional[int] = None
        self.feature_box_: Optional[Box] = None

    def fit(self, x: np.ndarray, feature_box: Optional[Box] = None) -> "GuidedIsolationTree":
        """Grow the tree on *x* within *feature_box* (defaults to its hull)."""
        x = check_2d(x, "X")
        self.n_features_ = x.shape[1]
        self.feature_box_ = feature_box if feature_box is not None else Box.from_data(x)
        self.root_ = self._build(x, self.feature_box_, depth=0)
        return self

    def _purity_stop(self, labels: np.ndarray) -> bool:
        """True when min/max class ratio in X_decision < τ_split."""
        n_mal = int(labels.sum())
        n_ben = labels.size - n_mal
        hi = max(n_mal, n_ben)
        lo = min(n_mal, n_ben)
        if hi == 0:
            return True
        return lo / hi < self.tau_split

    def _build(self, x_node: np.ndarray, box: Box, depth: int) -> GuidedTreeNode:
        n = x_node.shape[0]
        leaf = GuidedTreeNode(size=n, depth=depth, box=box)
        if n <= 1 or depth >= self.max_depth:
            if n > 0:
                x_aug = augment_from_box(
                    box, self.k_aug, self._rng, mode=self.augment_mode, x_local=x_node
                )
                x_decision = np.vstack([x_node, x_aug]) if len(x_aug) else x_node
                leaf.malicious_fraction = float(self.oracle.predict(x_decision).mean())
            return leaf

        x_aug = augment_from_box(
            box, self.k_aug, self._rng, mode=self.augment_mode, x_local=x_node
        )
        x_decision = np.vstack([x_node, x_aug]) if len(x_aug) else x_node
        labels = np.asarray(self.oracle.predict(x_decision), dtype=int)
        leaf.malicious_fraction = float(labels.mean())

        if self._purity_stop(labels):
            return leaf

        split = best_split(x_decision, labels, self.max_candidates_per_feature)
        if split is None:
            return leaf
        feature, value, _gain = split

        node = GuidedTreeNode(
            size=n,
            depth=depth,
            feature=feature,
            threshold=value,
            box=box,
            malicious_fraction=leaf.malicious_fraction,
        )
        left_box, right_box = box.split(feature, value)
        mask = x_node[:, feature] < value
        node.left = self._build(x_node[mask], left_box, depth + 1)
        node.right = self._build(x_node[~mask], right_box, depth + 1)
        return node

    # The traversal/inspection API matches IsolationTree so the distilled
    # forest and the rule compiler treat both tree kinds uniformly.

    def leaf_for(self, x_row: np.ndarray) -> GuidedTreeNode:
        """Route one sample to its leaf."""
        if self.root_ is None:
            raise RuntimeError("GuidedIsolationTree is not fitted")
        node = self.root_
        while not node.is_leaf:
            node = node.left if x_row[node.feature] < node.threshold else node.right
        return node

    def leaf_labels(self, x: np.ndarray) -> np.ndarray:
        """Vectorised leaf-label lookup: one 0/1 label per row of *x*.

        Descends with index arrays (one partition per internal node)
        instead of routing rows one at a time — the hot path of
        majority-vote inference.
        """
        if self.root_ is None:
            raise RuntimeError("GuidedIsolationTree is not fitted")
        x = np.asarray(x, dtype=float)
        out = np.empty(x.shape[0], dtype=int)
        stack = [(self.root_, np.arange(x.shape[0]))]
        while stack:
            node, idx = stack.pop()
            if idx.size == 0:
                continue
            if node.is_leaf:
                out[idx] = node.label if node.label is not None else 0
                continue
            mask = x[idx, node.feature] < node.threshold
            stack.append((node.left, idx[mask]))
            stack.append((node.right, idx[~mask]))
        return out

    def leaves(self) -> List[Tuple[GuidedTreeNode, Box]]:
        """All (leaf, feature-range box) pairs of the fitted tree."""
        if self.root_ is None:
            raise RuntimeError("GuidedIsolationTree is not fitted")
        out: List[Tuple[GuidedTreeNode, Box]] = []
        stack = [self.root_]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                out.append((node, node.box))
            else:
                stack.extend([node.left, node.right])
        return out

    def split_boundaries(self) -> List[List[float]]:
        """Per-feature sorted threshold lists used by internal nodes."""
        if self.root_ is None:
            raise RuntimeError("GuidedIsolationTree is not fitted")
        bounds: List[set] = [set() for _ in range(self.n_features_)]
        stack = [self.root_]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                continue
            bounds[node.feature].add(node.threshold)
            stack.extend([node.left, node.right])
        return [sorted(b) for b in bounds]

    def max_leaf_depth(self) -> int:
        return max(leaf.depth for leaf, _box in self.leaves())

    def n_leaves(self) -> int:
        return len(self.leaves())
