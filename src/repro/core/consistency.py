"""Consistency between the distilled forest and its compiled rules.

The paper checks rule fidelity with
C = (1/N) Σ 1{iForest_distilled(x_i) = R(x_i)} and reports
C ∈ [0.992, 0.996] across attacks (§3.2.3).  The same statistic applies
to the quantised rule set, which adds quantisation error on top of
compilation error.
"""

from __future__ import annotations

import numpy as np

from repro.core.rules import QuantizedRuleSet, RuleSet
from repro.features.scaling import IntegerQuantizer
from repro.utils.validation import check_2d


def consistency(forest_like, ruleset: RuleSet, x: np.ndarray) -> float:
    """Fraction of samples where forest and rules agree."""
    x = check_2d(x, "X")
    return float(np.mean(forest_like.predict(x) == ruleset.predict(x)))


def quantized_consistency(
    forest_like,
    q_ruleset: QuantizedRuleSet,
    quantizer: IntegerQuantizer,
    x: np.ndarray,
) -> float:
    """Agreement between the forest and the integer rules the switch runs."""
    x = check_2d(x, "X")
    q = quantizer.quantize(x)
    return float(np.mean(forest_like.predict(x) == q_ruleset.predict(q)))
