"""Whitelist rules and their representation (paper §3.2.3).

A :class:`WhitelistRule` is a labelled axis-aligned box over feature
space: per-feature [low, high) ranges plus a 0/1 label.  A
:class:`RuleSet` is an ordered list with first-match semantics and a
default verdict of *malicious* for unmatched samples — whitelist
semantics: traffic must match a benign rule to pass (fn 4: since most
traffic is benign, whitelisting the benign region keeps the rule count
small).

Rule sets are produced by the compilers in
:mod:`repro.core.hypercube` and consumed by the switch simulator after
quantisation (:meth:`RuleSet.quantize`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.features.scaling import IntegerQuantizer
from repro.utils.box import Box

BENIGN = 0
MALICIOUS = 1


@dataclass(frozen=True)
class WhitelistRule:
    """One labelled box: match when every feature lies in its range."""

    box: Box
    label: int

    def __post_init__(self) -> None:
        if self.label not in (BENIGN, MALICIOUS):
            raise ValueError(f"label must be 0 or 1, got {self.label}")

    @property
    def n_features(self) -> int:
        return self.box.n_features

    def matches(self, x: np.ndarray, outer: Optional[Box] = None) -> np.ndarray:
        """Boolean mask of rows matching the rule."""
        return self.box.contains(x, outer=outer)


class RuleSet:
    """Ordered rules with first-match semantics.

    Parameters
    ----------
    rules:
        Priority order, first match wins.
    outer_box:
        The domain box; matches at a rule's upper bound count when that
        bound coincides with the domain's (closed-at-the-top semantics).
    default_label:
        Verdict for samples matching no rule — MALICIOUS for whitelist
        deployments.
    """

    def __init__(
        self,
        rules: Sequence[WhitelistRule],
        outer_box: Optional[Box] = None,
        default_label: int = MALICIOUS,
    ) -> None:
        self.rules: List[WhitelistRule] = list(rules)
        if self.rules:
            n = self.rules[0].n_features
            if any(r.n_features != n for r in self.rules):
                raise ValueError("all rules must share the same feature count")
        self.outer_box = outer_box
        if default_label not in (BENIGN, MALICIOUS):
            raise ValueError(f"default_label must be 0 or 1, got {default_label}")
        self.default_label = default_label

    def __len__(self) -> int:
        return len(self.rules)

    def __iter__(self) -> Iterator[WhitelistRule]:
        return iter(self.rules)

    @property
    def n_benign_rules(self) -> int:
        return sum(1 for r in self.rules if r.label == BENIGN)

    @property
    def n_malicious_rules(self) -> int:
        return sum(1 for r in self.rules if r.label == MALICIOUS)

    def whitelist_only(self) -> "RuleSet":
        """Keep only the benign (label 0) rules — the set the paper
        installs; anything unmatched defaults to malicious."""
        return RuleSet(
            [r for r in self.rules if r.label == BENIGN],
            outer_box=self.outer_box,
            default_label=MALICIOUS,
        )

    def predict(self, x: np.ndarray) -> np.ndarray:
        """First-match label per row (default label when unmatched)."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        out = np.full(x.shape[0], self.default_label, dtype=int)
        unmatched = np.ones(x.shape[0], dtype=bool)
        for rule in self.rules:
            if not unmatched.any():
                break
            hits = rule.matches(x, outer=self.outer_box) & unmatched
            out[hits] = rule.label
            unmatched &= ~hits
        return out

    def match_one(self, x_row: np.ndarray) -> Tuple[int, Optional[int]]:
        """(label, rule index or None) for a single sample."""
        x = np.asarray(x_row, dtype=float).reshape(1, -1)
        for i, rule in enumerate(self.rules):
            if bool(rule.matches(x, outer=self.outer_box)[0]):
                return rule.label, i
        return self.default_label, None

    def transform_boundaries(self, fn) -> "RuleSet":
        """Map every rule boundary through a strictly increasing *fn*.

        Because range membership is preserved under monotone maps, the
        transformed rule set classifies ``fn(x)``-space points exactly as
        this one classifies x-space points.  Used to convert log-space
        rules back to raw feature units for switch installation.
        """
        def _map(values):
            return tuple(float(v) for v in np.asarray(fn(np.array(values)), dtype=float))

        rules = [
            WhitelistRule(box=Box(_map(r.box.lows), _map(r.box.highs)), label=r.label)
            for r in self.rules
        ]
        outer = (
            Box(_map(self.outer_box.lows), _map(self.outer_box.highs))
            if self.outer_box is not None
            else None
        )
        return RuleSet(rules, outer_box=outer, default_label=self.default_label)

    def quantize(self, quantizer: IntegerQuantizer) -> "QuantizedRuleSet":
        """Translate rule boundaries into integer match ranges for the
        switch TCAM (see :mod:`repro.switch.tables`)."""
        q_rules = []
        for rule in self.rules:
            lo = tuple(
                quantizer.quantize_bound(v, f) for f, v in enumerate(rule.box.lows)
            )
            hi = tuple(
                quantizer.quantize_bound(v, f) for f, v in enumerate(rule.box.highs)
            )
            q_rules.append(QuantizedRule(lows=lo, highs=hi, label=rule.label))
        return QuantizedRuleSet(
            q_rules,
            bits=quantizer.bits,
            default_label=self.default_label,
            quantizer_fingerprint=quantizer.fingerprint(),
        )


@dataclass(frozen=True)
class QuantizedRule:
    """Integer-range rule: match when lows[i] <= q[i] <= highs[i]."""

    lows: Tuple[int, ...]
    highs: Tuple[int, ...]
    label: int


class QuantizedRuleSet:
    """First-match rules in integer space — what the switch installs.

    ``quantizer_fingerprint`` records which fitted
    :class:`~repro.features.scaling.IntegerQuantizer` the rule boundaries
    were compiled with (set by :meth:`RuleSet.quantize`); the switch
    pipeline refuses to pair the table with a different quantizer.  Hand
    built rule sets may leave it ``None``, which skips that check.
    """

    def __init__(
        self,
        rules: Sequence[QuantizedRule],
        bits: int,
        default_label: int = MALICIOUS,
        quantizer_fingerprint: Optional[str] = None,
    ) -> None:
        self.rules = list(rules)
        self.bits = bits
        self.default_label = default_label
        self.quantizer_fingerprint = quantizer_fingerprint

    def __len__(self) -> int:
        return len(self.rules)

    def __iter__(self) -> Iterator[QuantizedRule]:
        return iter(self.rules)

    def predict(self, q: np.ndarray) -> np.ndarray:
        """First-match label per row of integer feature codes."""
        q = np.atleast_2d(np.asarray(q, dtype=np.int64))
        out = np.full(q.shape[0], self.default_label, dtype=int)
        unmatched = np.ones(q.shape[0], dtype=bool)
        for rule in self.rules:
            if not unmatched.any():
                break
            lo = np.array(rule.lows)
            hi = np.array(rule.highs)
            hits = np.all((q >= lo) & (q <= hi), axis=1) & unmatched
            out[hits] = rule.label
            unmatched &= ~hits
        return out

    def match_one(self, q_row: np.ndarray) -> Tuple[int, Optional[int]]:
        q = np.asarray(q_row, dtype=np.int64)
        for i, rule in enumerate(self.rules):
            if all(lo <= v <= hi for lo, v, hi in zip(rule.lows, q, rule.highs)):
                return rule.label, i
        return self.default_label, None
