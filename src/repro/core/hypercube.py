"""iForest hypercubes and rule compilation (paper §3.2.3, Fig 3c).

Two compilers turn a labelled forest (distilled iGuard forest or
score-labelled baseline) into a :class:`~repro.core.rules.RuleSet`:

* :func:`enumerate_hypercubes` — the paper's literal construction: the
  cartesian product of all per-feature split boundaries yields the grid
  of "iForest hypercubes"; one probe point inside each cell is labelled
  by the forest (every point of a cell shares the same label, since no
  split boundary crosses a cell); adjacent same-label cells merge.
  Exact but exponential in active features — used for small models and
  as the ground truth in tests.

* :func:`refine_hypercubes` — a scalable recursive refinement with the
  same output semantics: starting from the full feature box, a region
  whose probes (cell midpoint is decisive, plus random samples as a
  guard) agree on a label becomes a rule; otherwise the region splits at
  a forest boundary and recursion continues.  Because regions are always
  split exactly at forest boundaries, a region with no interior
  boundary is a union of grid cells... of exactly one cell in each
  active dimension — hence label-homogeneous, and probing its midpoint
  is exact.  A cell budget caps pathological blow-ups; consistency
  against the forest (paper: C = 0.992-0.996) is measured by
  :mod:`repro.core.consistency`.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.rules import BENIGN, MALICIOUS, RuleSet, WhitelistRule
from repro.utils.box import Box, merge_adjacent_boxes
from repro.utils.rng import SeedLike, as_rng


def _entropy(labels: np.ndarray) -> float:
    """Binary entropy of a 0/1 label vector (0 for empty/pure)."""
    if labels.size == 0:
        return 0.0
    p = float(labels.mean())
    if p <= 0.0 or p >= 1.0:
        return 0.0
    return -p * np.log2(p) - (1.0 - p) * np.log2(1.0 - p)


def _boundaries_in_box(
    boundaries: Sequence[Sequence[float]], box: Box
) -> List[List[float]]:
    """Per-feature boundaries strictly inside the box."""
    inside: List[List[float]] = []
    for feature, values in enumerate(boundaries):
        lo, hi = box.lows[feature], box.highs[feature]
        inside.append([v for v in values if lo < v < hi])
    return inside


def enumerate_hypercubes(
    forest_like,
    feature_box: Optional[Box] = None,
    max_cells: int = 200_000,
) -> List[Tuple[Box, int]]:
    """Exact grid construction of labelled hypercubes.

    Raises ``ValueError`` when the grid would exceed *max_cells* — use
    :func:`refine_hypercubes` for big forests.
    """
    box = feature_box if feature_box is not None else forest_like.feature_box_
    boundaries = _boundaries_in_box(forest_like.split_boundaries(), box)
    edges: List[List[float]] = []
    n_cells = 1
    for feature, values in enumerate(boundaries):
        feature_edges = [box.lows[feature]] + values + [box.highs[feature]]
        edges.append(feature_edges)
        n_cells *= len(feature_edges) - 1
        if n_cells > max_cells:
            raise ValueError(
                f"grid would contain > {max_cells} cells; use refine_hypercubes"
            )
    cells: List[Tuple[Box, int]] = []
    for combo in itertools.product(*[range(len(e) - 1) for e in edges]):
        lows = tuple(edges[f][i] for f, i in enumerate(combo))
        highs = tuple(edges[f][i + 1] for f, i in enumerate(combo))
        cell = Box(lows, highs)
        label = int(forest_like.predict(cell.midpoint().reshape(1, -1))[0])
        cells.append((cell, label))
    return cells


def refine_hypercubes(
    forest_like,
    feature_box: Optional[Box] = None,
    max_cells: int = 4096,
    n_probe_samples: int = 8,
    x_ref: Optional[np.ndarray] = None,
    max_ref_probes: int = 32,
    seed: SeedLike = None,
) -> List[Tuple[Box, int]]:
    """Recursive refinement into labelled regions (scalable compiler).

    Regions split at the median interior forest boundary of the feature
    with the most interior boundaries, which drives every path toward
    boundary-free (hence label-homogeneous) regions.  When the cell
    budget runs out, remaining mixed regions take their probes' majority
    label — the small infidelity the consistency metric quantifies.

    *x_ref* (normally the training set in the forest's feature space) is
    essential: the benign region is a thin manifold of near-zero volume,
    so uniform probes alone would declare the whole domain malicious.
    Reference rows falling inside a region are added to its probe set,
    forcing refinement exactly where benign cells exist.
    """
    box = feature_box if feature_box is not None else forest_like.feature_box_
    boundaries = forest_like.split_boundaries()
    rng = as_rng(seed)
    ref = None if x_ref is None else np.asarray(x_ref, dtype=float)

    from collections import deque

    result: List[Tuple[Box, int]] = []
    # Breadth-first worklist of (region, ref-row indices inside it);
    # the budget counts emitted + queued regions.  Splitting continues
    # while interior forest boundaries remain and budget allows — probe
    # agreement alone is *not* a stopping signal, because sparse probes
    # miss thin heterogeneous slivers (a boundary-free region, by
    # contrast, is provably label-homogeneous).  Regions whose probes
    # already disagree are refined first so a tight budget is spent where
    # it matters.
    work: deque = deque([(box, np.arange(len(ref)) if ref is not None else None)])
    budget = max_cells

    while work:
        region, ref_idx = work.popleft()
        probes = [np.atleast_2d(region.midpoint())]
        if n_probe_samples > 0:
            probes.append(region.sample(n_probe_samples, seed=rng))
        if ref_idx is not None and len(ref_idx):
            take = ref_idx[:max_ref_probes]
            probes.append(ref[take])
        x_probe = np.vstack(probes)
        labels = forest_like.predict(x_probe)
        homogeneous = labels.min() == labels.max()

        inside = _boundaries_in_box(boundaries, region)
        richest = max(range(len(inside)), key=lambda f: len(inside[f]))
        can_split = len(inside[richest]) > 0
        out_of_budget = budget <= len(work) + len(result) + 1

        if not can_split or out_of_budget:
            majority = int(round(float(labels.mean())))
            result.append((region, majority))
            continue

        # Gain-directed split: when probes disagree, choose the candidate
        # boundary that best separates their labels, so the cell budget is
        # spent resolving actual heterogeneity; homogeneous regions fall
        # back to the median boundary of the boundary-richest feature.
        split_feature, split_value = richest, None
        if not homogeneous:
            best_gain = 0.0
            parent_h = _entropy(labels)
            for f in range(region.n_features):
                values_f = inside[f]
                if not values_f:
                    continue
                candidates = values_f
                if len(candidates) > 8:
                    picks = np.linspace(0, len(candidates) - 1, 8)
                    candidates = [candidates[int(round(p))] for p in picks]
                col = x_probe[:, f]
                for v in candidates:
                    mask = col < v
                    n_l = int(mask.sum())
                    if n_l == 0 or n_l == len(labels):
                        continue
                    h = (
                        n_l * _entropy(labels[mask])
                        + (len(labels) - n_l) * _entropy(labels[~mask])
                    ) / len(labels)
                    gain = parent_h - h
                    if gain > best_gain:
                        best_gain, split_feature, split_value = gain, f, v
        if split_value is None:
            values = inside[richest]
            split_feature = richest
            split_value = values[len(values) // 2]
        left, right = region.split(split_feature, split_value)
        if ref_idx is not None and len(ref_idx):
            mask = ref[ref_idx, split_feature] < split_value
            children = [(left, ref_idx[mask]), (right, ref_idx[~mask])]
        else:
            children = [(left, ref_idx), (right, ref_idx)]
        if homogeneous:
            work.extend(children)  # refine later if budget remains
        else:
            work.extendleft(reversed(children))  # heterogeneous first
    return result


def merge_labeled_cells(
    cells: Sequence[Tuple[Box, int]]
) -> List[Tuple[Box, int]]:
    """Merge face-adjacent same-label cells (Fig 3c's purple boxes)."""
    benign = [box for box, label in cells if label == BENIGN]
    malicious = [box for box, label in cells if label == MALICIOUS]
    merged: List[Tuple[Box, int]] = []
    if benign:
        merged.extend((box, BENIGN) for box in merge_adjacent_boxes(benign))
    if malicious:
        merged.extend((box, MALICIOUS) for box in merge_adjacent_boxes(malicious))
    return merged


def compile_ruleset(
    forest_like,
    feature_box: Optional[Box] = None,
    method: str = "refine",
    max_cells: int = 4096,
    merge: bool = True,
    whitelist_only: bool = True,
    n_probe_samples: int = 8,
    x_ref: Optional[np.ndarray] = None,
    unbounded_edges: bool = True,
    seed: SeedLike = None,
) -> RuleSet:
    """Full §3.2.3 pipeline: hypercubes → labels → merge → whitelist rules.

    Parameters
    ----------
    forest_like:
        Labelled forest exposing ``predict`` / ``split_boundaries`` /
        ``feature_box_``.
    method:
        ``"refine"`` (scalable, default) or ``"enumerate"`` (exact grid).
    merge:
        Merge adjacent same-label cells before emitting rules.
    whitelist_only:
        Keep only benign rules (the set installed on the switch);
        unmatched traffic defaults to malicious.
    unbounded_edges:
        Extend rule bounds that coincide with the compilation box's edges
        to ±∞.  The box edge means "no forest split beyond this value",
        so the forest's verdict there continues indefinitely — exactly
        the paper's hypercubes, whose uncut dimensions are unbounded.
        Without this, samples just outside the training range would
        default to malicious even where the forest says benign, costing
        consistency.
    """
    box = feature_box if feature_box is not None else forest_like.feature_box_
    if method == "enumerate":
        cells = enumerate_hypercubes(forest_like, box, max_cells=max_cells)
    elif method == "refine":
        cells = refine_hypercubes(
            forest_like,
            box,
            max_cells=max_cells,
            n_probe_samples=n_probe_samples,
            x_ref=x_ref,
            seed=seed,
        )
    else:
        raise ValueError(f"method must be 'refine' or 'enumerate', got {method!r}")
    if merge:
        cells = merge_labeled_cells(cells)
    if unbounded_edges:
        boundaries = forest_like.split_boundaries()
        cells = [(_extend_edges(cell, boundaries), label) for cell, label in cells]
    rules = [WhitelistRule(box=cell, label=label) for cell, label in cells]
    outer = Box.full(box.n_features) if unbounded_edges else box
    ruleset = RuleSet(rules, outer_box=outer, default_label=MALICIOUS)
    if whitelist_only:
        ruleset = ruleset.whitelist_only()
    return ruleset


def _extend_edges(cell: Box, boundaries: Sequence[Sequence[float]]) -> Box:
    """Open a cell's terminal bounds to ±∞ where provably safe.

    Extension is exact only for boundary-free cells (no forest split
    crosses them, so their label is provably homogeneous and the
    forest's verdict persists beyond any bound with no boundary past
    it).  Budget-truncated cells — which may carry a majority label that
    misrepresents parts of their volume — stay finite, so beyond-domain
    traffic there falls back to the default (malicious) verdict.
    """
    interior = _boundaries_in_box(boundaries, cell)
    if any(interior[f] for f in range(cell.n_features)):
        return cell
    lows = list(cell.lows)
    highs = list(cell.highs)
    for f in range(cell.n_features):
        values = boundaries[f]
        if not values or lows[f] < values[0]:
            lows[f] = -np.inf
        if not values or highs[f] > values[-1]:
            highs[f] = np.inf
    return Box(tuple(lows), tuple(highs))
