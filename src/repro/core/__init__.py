"""iGuard core: autoencoder-guided iForest training, knowledge
distillation, hypercube → whitelist-rule compilation, consistency
checking, and the early-packet PL model."""

from repro.core.consistency import consistency, quantized_consistency
from repro.core.deployment import (
    SwitchArtifacts,
    compile_pl_artifacts,
    compile_switch_artifacts,
    quantize_ruleset,
    rule_domain,
)
from repro.core.distillation import DistilledForest
from repro.core.early import EarlyPacketModel
from repro.core.guided_forest import GuidedIsolationForest
from repro.core.guided_tree import (
    GuidedIsolationTree,
    GuidedTreeNode,
    augment_from_box,
    best_split,
    binary_entropy,
)
from repro.core.hypercube import (
    compile_ruleset,
    enumerate_hypercubes,
    merge_labeled_cells,
    refine_hypercubes,
)
from repro.core.iguard import IGuard
from repro.core.rules import (
    BENIGN,
    MALICIOUS,
    QuantizedRule,
    QuantizedRuleSet,
    RuleSet,
    WhitelistRule,
)

__all__ = [
    "BENIGN",
    "MALICIOUS",
    "DistilledForest",
    "EarlyPacketModel",
    "GuidedIsolationForest",
    "GuidedIsolationTree",
    "GuidedTreeNode",
    "IGuard",
    "QuantizedRule",
    "QuantizedRuleSet",
    "RuleSet",
    "SwitchArtifacts",
    "WhitelistRule",
    "augment_from_box",
    "best_split",
    "binary_entropy",
    "compile_pl_artifacts",
    "compile_ruleset",
    "compile_switch_artifacts",
    "consistency",
    "enumerate_hypercubes",
    "merge_labeled_cells",
    "quantize_ruleset",
    "quantized_consistency",
    "refine_hypercubes",
    "rule_domain",
]
