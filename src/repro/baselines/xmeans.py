"""X-means anomaly detector (Fig 10 candidate, cf. Feng et al. [16]).

X-means (Pelleg & Moore 2000) is k-means with BIC-driven cluster
splitting: starting from a small k, each cluster is tentatively split in
two and the split is kept when it improves the Bayesian Information
Criterion.  Anomaly score = distance to the nearest benign centroid.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import check_2d, check_fitted, check_probability


def _kmeans(
    x: np.ndarray, k: int, rng: np.random.Generator, n_iter: int = 50
) -> Tuple[np.ndarray, np.ndarray]:
    """Lloyd's algorithm with k-means++ seeding; returns (centroids, labels)."""
    n = x.shape[0]
    k = min(k, n)
    # k-means++ initialisation.
    centroids = [x[int(rng.integers(n))]]
    for _ in range(1, k):
        d2 = np.min(
            [np.sum((x - c) ** 2, axis=1) for c in centroids], axis=0
        )
        total = d2.sum()
        if total <= 0:
            centroids.append(x[int(rng.integers(n))])
            continue
        probs = d2 / total
        centroids.append(x[int(rng.choice(n, p=probs))])
    centers = np.array(centroids)

    labels = np.zeros(n, dtype=int)
    for _ in range(n_iter):
        dists = np.linalg.norm(x[:, None, :] - centers[None, :, :], axis=2)
        new_labels = dists.argmin(axis=1)
        if np.array_equal(new_labels, labels) and _ > 0:
            break
        labels = new_labels
        for j in range(centers.shape[0]):
            members = x[labels == j]
            if len(members):
                centers[j] = members.mean(axis=0)
    return centers, labels


def _bic(x: np.ndarray, centers: np.ndarray, labels: np.ndarray) -> float:
    """Spherical-Gaussian BIC of a k-means clustering (Pelleg & Moore)."""
    n, m = x.shape
    k = centers.shape[0]
    rss = 0.0
    for j in range(k):
        members = x[labels == j]
        if len(members):
            rss += float(np.sum((members - centers[j]) ** 2))
    variance = rss / max(n - k, 1) / m
    variance = max(variance, 1e-12)
    log_likelihood = 0.0
    for j in range(k):
        nj = int(np.sum(labels == j))
        if nj <= 0:
            continue
        log_likelihood += (
            nj * np.log(nj / n)
            - nj * m / 2.0 * np.log(2.0 * np.pi * variance)
            - (nj - 1) * m / 2.0
        )
    n_params = k * (m + 1)
    return log_likelihood - n_params / 2.0 * np.log(n)


class XMeansDetector:
    """BIC-splitting k-means with nearest-centroid anomaly scoring.

    Parameters
    ----------
    k_init / k_max:
        Starting and maximum cluster counts for the splitting loop.
    contamination:
        Threshold placement quantile on training scores.
    """

    def __init__(
        self,
        k_init: int = 2,
        k_max: int = 16,
        contamination: float = 0.02,
        log_scale: bool = True,
        seed: SeedLike = None,
    ):
        if k_init < 1 or k_max < k_init:
            raise ValueError(f"need 1 <= k_init <= k_max, got {k_init}, {k_max}")
        check_probability(contamination, "contamination")
        self.k_init = k_init
        self.k_max = k_max
        self.contamination = contamination
        self.log_scale = log_scale
        self.seed = seed
        self.centers_: Optional[np.ndarray] = None
        self.mean_: Optional[np.ndarray] = None
        self.std_: Optional[np.ndarray] = None
        self.threshold_: Optional[float] = None

    def _prepare(self, x: np.ndarray) -> np.ndarray:
        x = check_2d(x, "X")
        if self.log_scale:
            x = np.sign(x) * np.log1p(np.abs(x))
        return x

    def fit(self, x: np.ndarray) -> "XMeansDetector":
        x = self._prepare(x)
        rng = as_rng(self.seed)
        self.mean_ = x.mean(axis=0)
        self.std_ = np.where(x.std(axis=0) > 0, x.std(axis=0), 1.0)
        xs = (x - self.mean_) / self.std_

        centers, labels = _kmeans(xs, self.k_init, rng)
        improved = True
        while improved and centers.shape[0] < self.k_max:
            improved = False
            new_centers: List[np.ndarray] = []
            for j in range(centers.shape[0]):
                members = xs[labels == j]
                if len(members) < 4:
                    new_centers.append(centers[j])
                    continue
                # Tentative 2-split of this cluster; keep if BIC improves.
                sub_centers, sub_labels = _kmeans(members, 2, rng)
                parent = _bic(members, centers[j : j + 1], np.zeros(len(members), int))
                child = _bic(members, sub_centers, sub_labels)
                if child > parent and sub_centers.shape[0] == 2:
                    new_centers.extend([sub_centers[0], sub_centers[1]])
                    improved = True
                else:
                    new_centers.append(centers[j])
            centers = np.array(new_centers)[: self.k_max]
            dists = np.linalg.norm(xs[:, None, :] - centers[None, :, :], axis=2)
            labels = dists.argmin(axis=1)

        self.centers_ = centers
        train_scores = self._nearest_distance(xs)
        self.threshold_ = float(np.quantile(train_scores, 1.0 - self.contamination))
        return self

    def _nearest_distance(self, xs: np.ndarray) -> np.ndarray:
        dists = np.linalg.norm(xs[:, None, :] - self.centers_[None, :, :], axis=2)
        return dists.min(axis=1)

    @property
    def n_clusters_(self) -> int:
        check_fitted(self, "centers_")
        return int(self.centers_.shape[0])

    def anomaly_scores(self, x: np.ndarray) -> np.ndarray:
        check_fitted(self, "centers_")
        xs = (self._prepare(x) - self.mean_) / self.std_
        return self._nearest_distance(xs)

    def predict(self, x: np.ndarray) -> np.ndarray:
        check_fitted(self, "threshold_")
        return (self.anomaly_scores(x) > self.threshold_).astype(int)
