"""PCA residual anomaly detector (Fig 10 candidate).

Projects onto the top principal components of the benign data and scores
by the reconstruction residual — the linear ancestor of the autoencoder
approach, included exactly because the paper's App. A compares it.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.utils.validation import check_2d, check_fitted, check_probability


class PCADetector:
    """Reconstruction-residual detector on the top-q principal components.

    Parameters
    ----------
    n_components:
        Number of retained components; ``None`` keeps enough for 95% of
        the training variance.
    contamination:
        Threshold placement quantile on training scores.
    log_scale:
        Signed log1p preprocessing (shared with the other detectors).
    """

    def __init__(
        self,
        n_components: Optional[int] = None,
        contamination: float = 0.02,
        log_scale: bool = True,
        variance_target: float = 0.95,
    ):
        if n_components is not None and n_components < 1:
            raise ValueError(f"n_components must be >= 1, got {n_components}")
        check_probability(contamination, "contamination")
        check_probability(variance_target, "variance_target")
        self.n_components = n_components
        self.contamination = contamination
        self.log_scale = log_scale
        self.variance_target = variance_target
        self.mean_: Optional[np.ndarray] = None
        self.std_: Optional[np.ndarray] = None
        self.components_: Optional[np.ndarray] = None
        self.threshold_: Optional[float] = None

    def _prepare(self, x: np.ndarray) -> np.ndarray:
        x = check_2d(x, "X")
        if self.log_scale:
            x = np.sign(x) * np.log1p(np.abs(x))
        return x

    def fit(self, x: np.ndarray) -> "PCADetector":
        x = self._prepare(x)
        self.mean_ = x.mean(axis=0)
        self.std_ = np.where(x.std(axis=0) > 0, x.std(axis=0), 1.0)
        xs = (x - self.mean_) / self.std_
        _u, s, vt = np.linalg.svd(xs, full_matrices=False)
        if self.n_components is not None:
            q = min(self.n_components, vt.shape[0])
        else:
            explained = np.cumsum(s**2) / np.sum(s**2)
            q = int(np.searchsorted(explained, self.variance_target) + 1)
        self.components_ = vt[:q]
        train_scores = self.anomaly_scores_standardised(xs)
        self.threshold_ = float(np.quantile(train_scores, 1.0 - self.contamination))
        return self

    def anomaly_scores_standardised(self, xs: np.ndarray) -> np.ndarray:
        projected = xs @ self.components_.T @ self.components_
        return np.sqrt(np.mean((xs - projected) ** 2, axis=1))

    def anomaly_scores(self, x: np.ndarray) -> np.ndarray:
        check_fitted(self, "components_")
        xs = (self._prepare(x) - self.mean_) / self.std_
        return self.anomaly_scores_standardised(xs)

    def predict(self, x: np.ndarray) -> np.ndarray:
        check_fitted(self, "threshold_")
        return (self.anomaly_scores(x) > self.threshold_).astype(int)
