"""k-nearest-neighbour anomaly detector (Fig 10 candidate).

Score = distance to the k-th nearest benign training sample in the
log-scaled, standardised feature space.  Classic distance-based anomaly
detection; shares the detector contract (fit / anomaly_scores / predict).
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy.spatial import cKDTree

from repro.utils.rng import SeedLike
from repro.utils.validation import check_2d, check_fitted, check_probability


class KNNDetector:
    """Distance-to-k-th-neighbour anomaly detector.

    Parameters
    ----------
    k:
        Neighbour rank used as the anomaly score.
    contamination:
        Training-score quantile placement for the decision threshold.
    log_scale:
        Apply signed log1p before standardising (heavy-tailed traffic
        features need it, same rationale as the autoencoders).
    """

    def __init__(self, k: int = 5, contamination: float = 0.02, log_scale: bool = True):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        check_probability(contamination, "contamination")
        self.k = k
        self.contamination = contamination
        self.log_scale = log_scale
        self.tree_: Optional[cKDTree] = None
        self.mean_: Optional[np.ndarray] = None
        self.std_: Optional[np.ndarray] = None
        self.threshold_: Optional[float] = None

    def _prepare(self, x: np.ndarray) -> np.ndarray:
        x = check_2d(x, "X")
        if self.log_scale:
            x = np.sign(x) * np.log1p(np.abs(x))
        return x

    def fit(self, x: np.ndarray) -> "KNNDetector":
        x = self._prepare(x)
        self.mean_ = x.mean(axis=0)
        self.std_ = np.where(x.std(axis=0) > 0, x.std(axis=0), 1.0)
        xs = (x - self.mean_) / self.std_
        self.tree_ = cKDTree(xs)
        train_scores = self._scores_standardised(xs, training=True)
        self.threshold_ = float(np.quantile(train_scores, 1.0 - self.contamination))
        return self

    def _scores_standardised(self, xs: np.ndarray, training: bool = False) -> np.ndarray:
        # During training each point is its own nearest neighbour; ask for
        # one more and drop the zero-distance self-match.
        k = self.k + 1 if training else self.k
        distances, _ = self.tree_.query(xs, k=k)
        if k == 1:
            return np.atleast_1d(distances)
        return distances[:, -1]

    def anomaly_scores(self, x: np.ndarray) -> np.ndarray:
        check_fitted(self, "tree_")
        xs = (self._prepare(x) - self.mean_) / self.std_
        return self._scores_standardised(xs)

    def predict(self, x: np.ndarray) -> np.ndarray:
        check_fitted(self, "threshold_")
        return (self.anomaly_scores(x) > self.threshold_).astype(int)
