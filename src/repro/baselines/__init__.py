"""Classic unsupervised baselines for the candidate comparison (paper
App. A / Fig 10): kNN distance, PCA residual, X-means clustering."""

from repro.baselines.knn import KNNDetector
from repro.baselines.pca import PCADetector
from repro.baselines.xmeans import XMeansDetector

__all__ = ["KNNDetector", "PCADetector", "XMeansDetector"]
