"""Trace container: a time-ordered sequence of packets.

A :class:`Trace` stands in for a PCAP file.  Generators emit per-flow
packet lists; traces merge them into arrival order, and the switch
simulator replays them packet by packet.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Sequence

from repro.datasets.packet import FiveTuple, Packet


@dataclass
class Trace:
    """A time-ordered packet sequence with convenience accessors."""

    packets: List[Packet] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.packets = sorted(self.packets, key=lambda p: p.timestamp)

    def __len__(self) -> int:
        return len(self.packets)

    def __iter__(self) -> Iterator[Packet]:
        return iter(self.packets)

    def __getitem__(self, idx):
        return self.packets[idx]

    @property
    def duration(self) -> float:
        """Time span between first and last packet (0 for empty traces)."""
        if not self.packets:
            return 0.0
        return self.packets[-1].timestamp - self.packets[0].timestamp

    @property
    def total_bytes(self) -> int:
        """Sum of packet sizes."""
        return sum(p.size for p in self.packets)

    def flows(self) -> Dict[FiveTuple, List[Packet]]:
        """Group packets by *directional* 5-tuple, preserving arrival order."""
        groups: Dict[FiveTuple, List[Packet]] = {}
        for pkt in self.packets:
            groups.setdefault(pkt.five_tuple, []).append(pkt)
        return groups

    def bidirectional_flows(self) -> Dict[FiveTuple, List[Packet]]:
        """Group packets by canonical (direction-independent) 5-tuple."""
        groups: Dict[FiveTuple, List[Packet]] = {}
        for pkt in self.packets:
            groups.setdefault(pkt.five_tuple.canonical(), []).append(pkt)
        return groups

    def malicious_fraction(self) -> float:
        """Fraction of packets carrying the ground-truth malicious bit."""
        if not self.packets:
            return 0.0
        return sum(p.malicious for p in self.packets) / len(self.packets)

    def shifted(self, offset: float) -> "Trace":
        """Copy of the trace with all timestamps moved by *offset*."""
        return Trace([p.with_timestamp(p.timestamp + offset) for p in self.packets])

    def sliced(self, start: float, end: float) -> "Trace":
        """Packets with ``start <= timestamp < end``."""
        return Trace([p for p in self.packets if start <= p.timestamp < end])


def merge_traces(traces: Iterable[Trace]) -> Trace:
    """Interleave several traces into one, ordered by timestamp.

    Uses a k-way heap merge so large traces combine in O(n log k).
    """
    streams = [t.packets for t in traces if t.packets]
    merged = list(heapq.merge(*streams, key=lambda p: p.timestamp))
    out = Trace()
    out.packets = merged  # already sorted; skip re-sort in __post_init__
    return out


def flows_to_trace(flows: Sequence[Sequence[Packet]]) -> Trace:
    """Flatten per-flow packet lists into a single time-ordered trace."""
    packets: List[Packet] = []
    for flow in flows:
        packets.extend(flow)
    return Trace(packets)
