"""Classic PCAP file I/O.

Lets traces round-trip to real ``.pcap`` files so the library can be fed
actual captures (tcpdump/wireshark) and its synthetic traces can be
inspected in standard tools.  Implements the classic libpcap format
(magic 0xa1b2c3d4, microsecond timestamps) with Ethernet/IPv4/TCP|UDP
framing — exactly the fields iGuard's feature extractors read.  Payload
bytes are zero-filled on write (only sizes matter to the models) and
ignored on read.
"""

from __future__ import annotations

import struct
from typing import List, Optional

from repro.datasets.packet import (
    PROTO_TCP,
    PROTO_UDP,
    FiveTuple,
    Packet,
)
from repro.datasets.trace import Trace

PCAP_MAGIC = 0xA1B2C3D4
_GLOBAL_HEADER = struct.Struct("<IHHiIII")
_RECORD_HEADER = struct.Struct("<IIII")
_ETH_HEADER = struct.Struct("!6s6sH")
_IPV4_HEADER = struct.Struct("!BBHHHBBHII")
_TCP_HEADER = struct.Struct("!HHIIBBHHH")
_UDP_HEADER = struct.Struct("!HHHH")

ETHERTYPE_IPV4 = 0x0800
_ETH_LEN = 14
_IP_LEN = 20
_TCP_LEN = 20
_UDP_LEN = 8


def write_pcap(path: str, trace: Trace, snaplen: int = 65535) -> int:
    """Write *trace* as a classic pcap file; returns packets written.

    Non-TCP/UDP packets are skipped (the generators only emit those two).
    """
    written = 0
    with open(path, "wb") as fh:
        fh.write(_GLOBAL_HEADER.pack(PCAP_MAGIC, 2, 4, 0, 0, snaplen, 1))
        for pkt in trace:
            frame = _build_frame(pkt)
            if frame is None:
                continue
            ts_sec = int(pkt.timestamp)
            ts_usec = int(round((pkt.timestamp - ts_sec) * 1e6))
            fh.write(_RECORD_HEADER.pack(ts_sec, ts_usec, len(frame), max(pkt.size, len(frame))))
            fh.write(frame)
            written += 1
    return written


def _build_frame(pkt: Packet) -> Optional[bytes]:
    ft = pkt.five_tuple
    if ft.protocol == PROTO_TCP:
        l4 = _TCP_HEADER.pack(
            ft.src_port, ft.dst_port, 0, 0, (5 << 4), pkt.tcp_flags & 0xFF, 0xFFFF, 0, 0
        )
    elif ft.protocol == PROTO_UDP:
        payload_len = max(pkt.size - _ETH_LEN - _IP_LEN - _UDP_LEN, 0)
        l4 = _UDP_HEADER.pack(ft.src_port, ft.dst_port, _UDP_LEN + payload_len, 0)
    else:
        return None
    total_ip_len = max(pkt.size - _ETH_LEN, _IP_LEN + len(l4))
    ip = _IPV4_HEADER.pack(
        (4 << 4) | 5,  # version + IHL
        0,
        total_ip_len,
        0,
        0,
        pkt.ttl & 0xFF,
        ft.protocol,
        0,
        ft.src_ip,
        ft.dst_ip,
    )
    eth = _ETH_HEADER.pack(b"\x02" * 6, b"\x04" * 6, ETHERTYPE_IPV4)
    frame = eth + ip + l4
    pad = max(pkt.size - len(frame), 0)
    return frame + b"\x00" * pad


def read_pcap(path: str, malicious: bool = False) -> Trace:
    """Read a classic pcap file into a :class:`Trace`.

    Only Ethernet/IPv4/TCP|UDP packets are kept; *malicious* stamps the
    ground-truth bit on every packet (captures are usually single-class).
    Raises ``ValueError`` on a non-pcap or big-endian file.
    """
    packets: List[Packet] = []
    with open(path, "rb") as fh:
        header = fh.read(_GLOBAL_HEADER.size)
        if len(header) < _GLOBAL_HEADER.size:
            raise ValueError(f"{path} is too short to be a pcap file")
        magic = struct.unpack("<I", header[:4])[0]
        if magic != PCAP_MAGIC:
            raise ValueError(
                f"{path} is not a little-endian classic pcap (magic {magic:#x})"
            )
        while True:
            rec = fh.read(_RECORD_HEADER.size)
            if len(rec) < _RECORD_HEADER.size:
                break
            ts_sec, ts_usec, incl_len, orig_len = _RECORD_HEADER.unpack(rec)
            frame = fh.read(incl_len)
            if len(frame) < incl_len:
                break
            pkt = _parse_frame(frame, ts_sec + ts_usec / 1e6, orig_len, malicious)
            if pkt is not None:
                packets.append(pkt)
    return Trace(packets)


def _parse_frame(
    frame: bytes, timestamp: float, orig_len: int, malicious: bool
) -> Optional[Packet]:
    if len(frame) < _ETH_LEN + _IP_LEN:
        return None
    _dst, _src, ethertype = _ETH_HEADER.unpack(frame[:_ETH_LEN])
    if ethertype != ETHERTYPE_IPV4:
        return None
    ip = _IPV4_HEADER.unpack(frame[_ETH_LEN : _ETH_LEN + _IP_LEN])
    version_ihl, _tos, _total, _ident, _frag, ttl, protocol, _cksum, src_ip, dst_ip = ip
    if version_ihl >> 4 != 4:
        return None
    ihl_bytes = (version_ihl & 0xF) * 4
    l4_offset = _ETH_LEN + ihl_bytes
    flags = 0
    if protocol == PROTO_TCP and len(frame) >= l4_offset + _TCP_LEN:
        tcp = _TCP_HEADER.unpack(frame[l4_offset : l4_offset + _TCP_LEN])
        src_port, dst_port = tcp[0], tcp[1]
        flags = tcp[5]
    elif protocol == PROTO_UDP and len(frame) >= l4_offset + _UDP_LEN:
        udp = _UDP_HEADER.unpack(frame[l4_offset : l4_offset + _UDP_LEN])
        src_port, dst_port = udp[0], udp[1]
    else:
        return None
    return Packet(
        five_tuple=FiveTuple(src_ip, dst_ip, src_port, dst_port, protocol),
        timestamp=timestamp,
        size=orig_len,
        ttl=ttl,
        tcp_flags=flags,
        malicious=malicious,
    )
