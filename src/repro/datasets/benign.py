"""Benign IoT traffic model.

Stands in for the Sivanathan et al. smart-environment captures and the
HorusEye benign sets (DESIGN.md §1).  The mixture covers eight device
classes whose flow signatures span wide per-feature marginals — packet
sizes from ~60 B keep-alives to full-MTU firmware downloads, inter-packet
delays from 4 ms streaming to 2 s NTP polls — while staying on the benign
manifold: size dispersion proportional to size mean (CoV ≈ 0.06–0.18),
IPD jitter proportional to IPD mean (CoV ≈ 0.1–0.4), and (size, IPD)
pairs confined to device-class clusters.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.datasets.packet import FLAG_ACK, PROTO_TCP, PROTO_UDP, Packet, make_ip
from repro.datasets.profiles import LAN_BLOCK, WAN_BLOCK, FlowProfile, ProfileMixture
from repro.datasets.trace import Trace, flows_to_trace
from repro.utils.rng import SeedLike

# Benign manifold bands (shared by every device profile; attacks violate
# them — see repro.datasets.attacks).
BENIGN_SIZE_COV = (0.06, 0.18)
BENIGN_IPD_COV = (0.10, 0.40)


def device_profiles() -> List[FlowProfile]:
    """The eight benign device classes of the smart-environment model."""
    return [
        FlowProfile(
            name="temp-sensor",
            protocol=PROTO_UDP,
            dst_ports=(1883,),
            size_mean_range=(78.0, 98.0),
            size_cov_range=BENIGN_SIZE_COV,
            ipd_mean_range=(0.8, 1.4),
            ipd_cov_range=BENIGN_IPD_COV,
            count_range=(6, 30),
        ),
        FlowProfile(
            name="smart-plug",
            protocol=PROTO_TCP,
            dst_ports=(8883,),
            size_mean_range=(105.0, 140.0),
            size_cov_range=BENIGN_SIZE_COV,
            ipd_mean_range=(0.35, 0.7),
            ipd_cov_range=BENIGN_IPD_COV,
            count_range=(8, 40),
        ),
        FlowProfile(
            name="camera-stream",
            protocol=PROTO_UDP,
            dst_ports=(554, 1935),
            size_mean_range=(950.0, 1150.0),
            size_cov_range=BENIGN_SIZE_COV,
            ipd_mean_range=(0.008, 0.018),
            ipd_cov_range=BENIGN_IPD_COV,
            count_range=(150, 800),
        ),
        FlowProfile(
            name="voice-assistant",
            protocol=PROTO_TCP,
            dst_ports=(443,),
            size_mean_range=(360.0, 480.0),
            size_cov_range=BENIGN_SIZE_COV,
            ipd_mean_range=(0.04, 0.09),
            ipd_cov_range=BENIGN_IPD_COV,
            count_range=(40, 200),
        ),
        FlowProfile(
            name="dns-client",
            protocol=PROTO_UDP,
            dst_ports=(53,),
            size_mean_range=(80.0, 110.0),
            size_cov_range=BENIGN_SIZE_COV,
            ipd_mean_range=(0.2, 0.5),
            ipd_cov_range=BENIGN_IPD_COV,
            count_range=(2, 6),
        ),
        FlowProfile(
            name="ntp-client",
            protocol=PROTO_UDP,
            dst_ports=(123,),
            size_mean_range=(86.0, 94.0),
            size_cov_range=BENIGN_SIZE_COV,
            ipd_mean_range=(1.5, 2.5),
            ipd_cov_range=BENIGN_IPD_COV,
            count_range=(2, 4),
        ),
        FlowProfile(
            name="firmware-update",
            protocol=PROTO_TCP,
            dst_ports=(443, 8443),
            size_mean_range=(1300.0, 1470.0),
            size_cov_range=BENIGN_SIZE_COV,
            ipd_mean_range=(0.003, 0.007),
            ipd_cov_range=BENIGN_IPD_COV,
            count_range=(250, 1000),
        ),
        FlowProfile(
            name="hub-telemetry",
            protocol=PROTO_TCP,
            dst_ports=(8080, 8443),
            size_mean_range=(210.0, 300.0),
            size_cov_range=BENIGN_SIZE_COV,
            ipd_mean_range=(0.12, 0.3),
            ipd_cov_range=BENIGN_IPD_COV,
            count_range=(15, 80),
        ),
    ]


#: Mixture weights roughly matching IoT capture composition: chatty small
#: devices dominate flow counts; streams dominate bytes.
DEVICE_WEIGHTS = (0.18, 0.15, 0.10, 0.12, 0.18, 0.10, 0.05, 0.12)


def benign_mixture() -> ProfileMixture:
    """The benign device mixture used by all experiments."""
    return ProfileMixture(device_profiles(), DEVICE_WEIGHTS)


def generate_benign_flows(
    n_flows: int, seed: SeedLike = None, flow_arrival_rate: float = 4.0
) -> List[List[Packet]]:
    """Generate *n_flows* benign flows (per-flow packet lists)."""
    return benign_mixture().generate_flows(n_flows, seed=seed, flow_arrival_rate=flow_arrival_rate)


def generate_benign_trace(
    n_flows: int, seed: SeedLike = None, flow_arrival_rate: float = 4.0
) -> Trace:
    """Generate a benign trace of *n_flows* flows merged into arrival order."""
    return flows_to_trace(generate_benign_flows(n_flows, seed, flow_arrival_rate))
