"""Dataset splitting following the paper's (HorusEye's) protocol.

Benign traffic splits into train/test; the training part splits again
into train/validation 4:1; and 20% attack traffic is added to the
validation and test sets, one attack at a time (§3.1, §4).  Models are
tuned on the validation set and reported on the test set.

Two granularities are provided: feature-level splits
(:func:`make_attack_split`) for the CPU experiments, and trace-level
splits (:func:`make_trace_split`) whose test portion is a packet trace
replayed through the switch simulator for the testbed experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.attacks import generate_attack_flows
from repro.datasets.benign import generate_benign_flows
from repro.datasets.packet import Packet
from repro.datasets.trace import Trace, flows_to_trace, merge_traces
from repro.utils.rng import SeedLike, as_rng, spawn_seeds

# NOTE: repro.features imports repro.datasets.packet, so the feature
# extractor is imported lazily inside make_attack_split to keep package
# initialisation acyclic.


@dataclass(frozen=True)
class DatasetSplit:
    """Feature-level experiment split.

    ``x_train`` is benign-only (unsupervised protocol); validation and
    test carry labels for tuning and reporting.
    """

    x_train: np.ndarray
    x_val: np.ndarray
    y_val: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray
    feature_names: Tuple[str, ...]
    attack_name: str

    @property
    def n_features(self) -> int:
        return self.x_train.shape[1]


@dataclass(frozen=True)
class TraceSplit:
    """Trace-level experiment split for the switch simulator.

    ``train_flows`` are benign flows the models fit on; ``test_trace``
    interleaves benign and attack packets with ground truth on each
    packet (per-packet metrics, §4.2.1).
    """

    train_flows: List[List[Packet]]
    val_flows: List[List[Packet]]
    val_labels: np.ndarray
    test_trace: Trace
    attack_name: str


def _attack_count(n_benign: int, attack_fraction: float) -> int:
    """Number of attack samples so they form *attack_fraction* of the set."""
    if not 0.0 < attack_fraction < 1.0:
        raise ValueError(f"attack_fraction must be in (0, 1), got {attack_fraction}")
    return max(1, round(n_benign * attack_fraction / (1.0 - attack_fraction)))


def split_benign_indices(
    n: int, rng: np.random.Generator, test_fraction: float = 0.25, val_ratio: float = 0.2
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Shuffled (train, val, test) index arrays.

    ``test_fraction`` of samples go to test; the rest splits train:val
    = (1−val_ratio):val_ratio, i.e. the paper's 4:1 with the default.
    """
    idx = rng.permutation(n)
    n_test = max(1, round(n * test_fraction))
    test_idx = idx[:n_test]
    rest = idx[n_test:]
    n_val = max(1, round(len(rest) * val_ratio))
    return rest[n_val:], rest[:n_val], test_idx


def make_attack_split(
    attack_name: str,
    n_benign_flows: int = 1200,
    feature_set: str = "magnifier",
    attack_fraction: float = 0.2,
    pkt_count_threshold: Optional[int] = None,
    timeout: Optional[float] = None,
    seed: SeedLike = None,
) -> DatasetSplit:
    """Build the full feature-level split for one attack workload."""
    from repro.features.flow_features import FlowFeatureExtractor

    rng = as_rng(seed)
    benign_seed, attack_seed, split_seed = spawn_seeds(rng, 3)
    extractor = FlowFeatureExtractor(
        feature_set=feature_set,
        pkt_count_threshold=pkt_count_threshold,
        timeout=timeout,
    )

    benign_flows = generate_benign_flows(n_benign_flows, seed=benign_seed)
    x_benign, _ = extractor.extract_flows(benign_flows)

    split_rng = as_rng(split_seed)
    train_idx, val_idx, test_idx = split_benign_indices(len(x_benign), split_rng)

    n_attack = _attack_count(len(val_idx) + len(test_idx), attack_fraction)
    attack_flows = generate_attack_flows(attack_name, n_attack, seed=attack_seed)
    x_attack, _ = extractor.extract_flows(attack_flows)

    n_attack_val = _attack_count(len(val_idx), attack_fraction)
    n_attack_val = min(n_attack_val, len(x_attack) - 1)
    x_attack_val = x_attack[:n_attack_val]
    x_attack_test = x_attack[n_attack_val:]

    x_val = np.vstack([x_benign[val_idx], x_attack_val])
    y_val = np.concatenate([np.zeros(len(val_idx), int), np.ones(len(x_attack_val), int)])
    x_test = np.vstack([x_benign[test_idx], x_attack_test])
    y_test = np.concatenate([np.zeros(len(test_idx), int), np.ones(len(x_attack_test), int)])

    return DatasetSplit(
        x_train=x_benign[train_idx],
        x_val=x_val,
        y_val=y_val,
        x_test=x_test,
        y_test=y_test,
        feature_names=extractor.feature_names,
        attack_name=attack_name,
    )


@dataclass(frozen=True)
class DriftTraceSplit:
    """Trace split with a mid-stream benign distribution shift.

    ``stream_trace`` plays an initial benign device mix (phase A), then
    switches to a different mix (phase B) at ``drift_time``; attack
    packets are overlaid on both phases.  ``train_flows`` sample the
    phase-A mix (what the initially deployed model sees);
    ``shifted_train_flows`` sample the phase-B mix cleanly, for training
    the reference model a runtime retrain is compared against.
    """

    train_flows: List[List[Packet]]
    stream_trace: Trace
    drift_time: float
    shifted_train_flows: List[List[Packet]]
    attack_name: str


#: Device-profile index sets for the two phases of a drift scenario.
#: Phase A: chatty small-packet devices (sensors, plugs, DNS/NTP
#: clients, hub telemetry).  Phase B: heavy streaming devices (camera,
#: voice assistant, firmware updates) — far outside phase A's whitelist
#: boxes in packet size, IPD, and volume, so the shift is detectable.
_DRIFT_MIX_A = (0, 1, 4, 5, 7)
_DRIFT_MIX_B = (2, 3, 6)


def _device_mixture(indices: Sequence[int]):
    from repro.datasets.benign import DEVICE_WEIGHTS, device_profiles
    from repro.datasets.profiles import ProfileMixture

    profiles = device_profiles()
    return ProfileMixture(
        [profiles[i] for i in indices], [DEVICE_WEIGHTS[i] for i in indices]
    )


def make_drift_split(
    attack_name: str,
    n_benign_flows: int = 240,
    attack_fraction: float = 0.15,
    shift: str = "device_mix",
    seed: SeedLike = None,
) -> DriftTraceSplit:
    """Build a two-phase streaming trace for the serving-runtime tests.

    ``shift="device_mix"`` switches the benign mix from small chatty
    devices to heavy streaming devices at mid-stream; ``shift="none"``
    keeps the phase-A mix throughout (the no-drift control — a monitor
    should raise nothing on it).  Each phase holds ``n_benign_flows``
    benign flows with ``attack_fraction`` of attack traffic overlaid.
    """
    if shift not in ("device_mix", "none"):
        raise ValueError(f"shift must be 'device_mix' or 'none', got {shift!r}")
    rng = as_rng(seed)
    train_seed, a_seed, b_seed, ref_seed, attack_seed = spawn_seeds(rng, 5)

    mix_a = _device_mixture(_DRIFT_MIX_A)
    mix_b = mix_a if shift == "none" else _device_mixture(_DRIFT_MIX_B)

    train_flows = mix_a.generate_flows(n_benign_flows, seed=train_seed,
                                       flow_arrival_rate=4.0)
    phase_a_flows = mix_a.generate_flows(n_benign_flows, seed=a_seed,
                                         flow_arrival_rate=4.0)
    phase_b_flows = mix_b.generate_flows(n_benign_flows, seed=b_seed,
                                         flow_arrival_rate=4.0)
    shifted_train_flows = mix_b.generate_flows(n_benign_flows, seed=ref_seed,
                                               flow_arrival_rate=4.0)

    phase_a = flows_to_trace(phase_a_flows)
    phase_b = flows_to_trace(phase_b_flows)
    # Phase B begins right after phase A's window ends.
    drift_time = phase_a[-1].timestamp + 1e-3
    phase_b = phase_b.shifted(drift_time - phase_b[0].timestamp)

    n_attack = _attack_count(2 * n_benign_flows, attack_fraction)
    attack_flows = generate_attack_flows(attack_name, n_attack, seed=attack_seed)
    half = max(1, len(attack_flows) // 2)
    overlays = []
    for flows, phase_start in (
        (attack_flows[:half], phase_a[0].timestamp),
        (attack_flows[half:], drift_time),
    ):
        if not flows:
            continue
        overlay = flows_to_trace(flows)
        overlays.append(overlay.shifted(phase_start - overlay[0].timestamp))

    stream_trace = merge_traces([phase_a, phase_b] + overlays)
    return DriftTraceSplit(
        train_flows=train_flows,
        stream_trace=stream_trace,
        drift_time=drift_time,
        shifted_train_flows=shifted_train_flows,
        attack_name=attack_name,
    )


def make_trace_split(
    attack_name: str,
    n_benign_flows: int = 900,
    attack_fraction: float = 0.2,
    seed: SeedLike = None,
) -> TraceSplit:
    """Build the trace-level split for the testbed (switch) experiments.

    The test trace interleaves the benign test flows and attack flows in
    a common time window, as tcpreplay does on the paper's testbed.
    """
    rng = as_rng(seed)
    benign_seed, attack_seed, split_seed = spawn_seeds(rng, 3)

    benign_flows = generate_benign_flows(n_benign_flows, seed=benign_seed)
    split_rng = as_rng(split_seed)
    train_idx, val_idx, test_idx = split_benign_indices(len(benign_flows), split_rng)

    train_flows = [benign_flows[i] for i in train_idx]
    benign_val = [benign_flows[i] for i in val_idx]
    benign_test = [benign_flows[i] for i in test_idx]

    n_attack_total = _attack_count(len(val_idx) + len(test_idx), attack_fraction)
    attack_flows = generate_attack_flows(attack_name, n_attack_total, seed=attack_seed)
    n_attack_val = min(_attack_count(len(val_idx), attack_fraction), len(attack_flows) - 1)
    attack_val = attack_flows[:n_attack_val]
    attack_test = attack_flows[n_attack_val:]

    val_flows = benign_val + attack_val
    val_labels = np.concatenate(
        [np.zeros(len(benign_val), int), np.ones(len(attack_val), int)]
    )

    benign_trace = flows_to_trace(benign_test)
    attack_trace = flows_to_trace(attack_test)
    # Overlay the attack onto the benign window so packets interleave.
    if len(attack_trace) and len(benign_trace):
        offset = benign_trace[0].timestamp - attack_trace[0].timestamp
        attack_trace = attack_trace.shifted(offset)
    test_trace = merge_traces([benign_trace, attack_trace])

    return TraceSplit(
        train_flows=train_flows,
        val_flows=val_flows,
        val_labels=val_labels,
        test_trace=test_trace,
        attack_name=attack_name,
    )
