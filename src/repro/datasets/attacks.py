"""Attack traffic generators for the paper's 15 attack workloads.

Each generator reproduces the *feature-level* signature of the named
attack from the datasets the paper uses (Bezerra et al. IoT host traces,
Ding's IoT malware corpus, HorusEye, Bot-IoT, Kitsune).  The profiles are
deliberately placed **inside** the benign per-feature marginals but **off**
the benign manifold (see :mod:`repro.datasets.profiles`): floods use
near-constant packet sizes and metronomic inter-packet delays (dispersion
far below the benign coefficient-of-variation band), exfiltration pairs
full-MTU packets with slow drips (a joint no benign device exhibits),
keyloggers produce burstiness above the benign band, and scans emit
swarms of one-packet flows.

The five ``* router`` workloads model the same attacks observed behind a
home router/NAT (as in the paper's router-filtered captures): sources are
collapsed to the router's WAN address with port translation, a queueing
jitter floor is added, and TTLs are decremented.

Beyond the paper's 15 workloads, :data:`EXTENDED_ATTACKS` adds the
families a terabit-class DDoS substrate needs (the scenario foundry's
campaign catalogue): DNS/NTP amplification with reflection asymmetry,
ACK floods, and fragmentation DoS.  Reflection attacks emit *both*
directions of every flow — the small spoofed request and the amplified
response — with the response 5-tuple being exactly the reverse of the
request's, so direction-canonicalised hashing (the flow store's bi-hash
and :class:`repro.cluster.router.FlowShardRouter`) keeps request and
response on the same register slot / shard.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.datasets.packet import (
    FLAG_ACK,
    FLAG_PSH,
    FLAG_SYN,
    MAX_PACKET_SIZE,
    PROTO_TCP,
    PROTO_UDP,
    FiveTuple,
    Packet,
    make_ip,
)
from repro.datasets.profiles import LAN_BLOCK, WAN_BLOCK, FlowProfile, ProfileMixture
from repro.utils.rng import SeedLike, as_rng

#: Router WAN address used by the NAT model.
ROUTER_WAN_IP = make_ip(198, 51, 100, 1)

#: /24 base of the open-reflector pool (resolvers, NTP servers) abused
#: by the amplification attacks.
REFLECTOR_BLOCK = make_ip(198, 18, 0, 0)

#: Dispersion bands violated by attacks (cf. benign bands in benign.py).
FLOOD_COV = (0.0, 0.02)
SCAN_PORTS = (21, 22, 23, 25, 53, 80, 110, 135, 139, 143, 443, 445, 3389, 8080)


def _mirai_profile() -> FlowProfile:
    # Telnet scanning / brute force: tiny constant SYN+credential packets,
    # metronomic retry timer, botnet-scale source pool.
    return FlowProfile(
        name="mirai",
        protocol=PROTO_TCP,
        dst_ports=(23, 2323),
        size_mean_range=(62.0, 72.0),
        size_cov_range=(0.0, 0.02),
        ipd_mean_range=(0.05, 0.12),
        ipd_cov_range=(0.02, 0.06),
        count_range=(20, 120),
        tcp_flags=FLAG_SYN,
        malicious=True,
        src_block=WAN_BLOCK,
        dst_block=LAN_BLOCK,
        n_sources=64,
        n_destinations=16,
    )


def _aidra_profile() -> FlowProfile:
    # Aidra/LightAidra IRC botnet: telnet probes slightly slower and more
    # varied than Mirai's.
    return FlowProfile(
        name="aidra",
        protocol=PROTO_TCP,
        dst_ports=(23,),
        size_mean_range=(64.0, 82.0),
        size_cov_range=(0.005, 0.03),
        ipd_mean_range=(0.1, 0.25),
        ipd_cov_range=(0.03, 0.08),
        count_range=(10, 60),
        tcp_flags=FLAG_SYN,
        malicious=True,
        src_block=WAN_BLOCK,
        dst_block=LAN_BLOCK,
        n_sources=48,
        n_destinations=16,
    )


def _bashlite_profile() -> FlowProfile:
    # Bashlite/Gafgyt UDP flood: mid-size constant payloads at kHz rates.
    return FlowProfile(
        name="bashlite",
        protocol=PROTO_UDP,
        dst_ports=(80, 8080, 10000),
        size_mean_range=(520.0, 580.0),
        size_cov_range=FLOOD_COV,
        ipd_mean_range=(0.003, 0.007),
        ipd_cov_range=(0.01, 0.05),
        count_range=(250, 900),
        malicious=True,
        src_block=LAN_BLOCK,
        dst_block=WAN_BLOCK,
        n_sources=16,
        n_destinations=2,
    )


def _udp_ddos_profile() -> FlowProfile:
    return FlowProfile(
        name="udp-ddos",
        protocol=PROTO_UDP,
        dst_ports=(53, 80, 123),
        size_mean_range=(470.0, 530.0),
        size_cov_range=FLOOD_COV,
        ipd_mean_range=(0.002, 0.005),
        ipd_cov_range=(0.005, 0.03),
        count_range=(300, 900),
        malicious=True,
        src_block=WAN_BLOCK,
        dst_block=LAN_BLOCK,
        n_sources=128,
        n_destinations=1,
    )


def _tcp_ddos_profile() -> FlowProfile:
    # SYN flood: minimum-size segments, sub-ms spacing.
    return FlowProfile(
        name="tcp-ddos",
        protocol=PROTO_TCP,
        dst_ports=(80, 443),
        size_mean_range=(62.0, 80.0),
        size_cov_range=FLOOD_COV,
        ipd_mean_range=(0.003, 0.008),
        ipd_cov_range=(0.005, 0.03),
        count_range=(300, 1000),
        tcp_flags=FLAG_SYN,
        malicious=True,
        src_block=WAN_BLOCK,
        dst_block=LAN_BLOCK,
        n_sources=128,
        n_destinations=1,
    )


def _http_ddos_profile() -> FlowProfile:
    # HTTP GET flood: templated requests, rhythm far steadier than human
    # or device-driven web traffic.
    return FlowProfile(
        name="http-ddos",
        protocol=PROTO_TCP,
        dst_ports=(80,),
        size_mean_range=(320.0, 380.0),
        size_cov_range=(0.01, 0.05),
        ipd_mean_range=(0.015, 0.03),
        ipd_cov_range=(0.02, 0.05),
        count_range=(100, 400),
        tcp_flags=FLAG_ACK | FLAG_PSH,
        malicious=True,
        src_block=WAN_BLOCK,
        dst_block=LAN_BLOCK,
        n_sources=96,
        n_destinations=1,
    )


def _os_scan_profile() -> FlowProfile:
    # Nmap-style OS fingerprinting: swarms of 1-2 packet SYN probes with
    # crafted TTLs across many ports.
    return FlowProfile(
        name="os-scan",
        protocol=PROTO_TCP,
        dst_ports=SCAN_PORTS,
        size_mean_range=(60.0, 64.0),
        size_cov_range=(0.0, 0.01),
        ipd_mean_range=(0.01, 0.05),
        ipd_cov_range=(0.05, 0.15),
        count_range=(1, 3),
        ttl_choices=(32, 64, 128, 255),
        tcp_flags=FLAG_SYN,
        malicious=True,
        src_block=WAN_BLOCK,
        dst_block=LAN_BLOCK,
        n_sources=4,
        n_destinations=24,
    )


def _service_scan_profile() -> FlowProfile:
    # Horizontal service sweep: the same few service ports probed across
    # every host in the block.
    return FlowProfile(
        name="service-scan",
        protocol=PROTO_TCP,
        dst_ports=(22, 23, 80, 443, 445),
        size_mean_range=(60.0, 74.0),
        size_cov_range=(0.0, 0.02),
        ipd_mean_range=(0.02, 0.08),
        ipd_cov_range=(0.05, 0.2),
        count_range=(1, 3),
        tcp_flags=FLAG_SYN,
        malicious=True,
        src_block=WAN_BLOCK,
        dst_block=LAN_BLOCK,
        n_sources=4,
        n_destinations=64,
    )


def _port_scan_profile() -> FlowProfile:
    # Vertical port scan of a single host: one probe per port.
    return FlowProfile(
        name="port-scan",
        protocol=PROTO_TCP,
        dst_ports=tuple(range(1, 1024, 7)),
        size_mean_range=(60.0, 64.0),
        size_cov_range=(0.0, 0.01),
        ipd_mean_range=(0.005, 0.02),
        ipd_cov_range=(0.02, 0.1),
        count_range=(1, 2),
        tcp_flags=FLAG_SYN,
        malicious=True,
        src_block=WAN_BLOCK,
        dst_block=LAN_BLOCK,
        n_sources=2,
        n_destinations=4,
    )


def _data_theft_profile() -> FlowProfile:
    # Slow exfiltration over TLS: full-MTU packets on a drip timer — a
    # (size, IPD) joint no benign device produces (bulk transfers are fast,
    # slow flows are small).
    return FlowProfile(
        name="data-theft",
        protocol=PROTO_TCP,
        dst_ports=(443,),
        size_mean_range=(1350.0, 1450.0),
        size_cov_range=(0.02, 0.06),
        ipd_mean_range=(0.3, 0.8),
        ipd_cov_range=(0.05, 0.15),
        count_range=(20, 80),
        tcp_flags=FLAG_ACK | FLAG_PSH,
        malicious=True,
        src_block=LAN_BLOCK,
        dst_block=WAN_BLOCK,
        n_sources=6,
        n_destinations=3,
    )


def _keylogging_profile() -> FlowProfile:
    # Keystroke exfil to an IRC-style C2: tiny packets in human-typing
    # bursts — dispersion far above the benign jitter band.
    return FlowProfile(
        name="keylogging",
        protocol=PROTO_TCP,
        dst_ports=(6667, 1337),
        size_mean_range=(62.0, 90.0),
        size_cov_range=(0.25, 0.5),
        ipd_mean_range=(0.15, 0.5),
        ipd_cov_range=(0.8, 1.6),
        count_range=(20, 100),
        tcp_flags=FLAG_ACK | FLAG_PSH,
        malicious=True,
        src_block=LAN_BLOCK,
        dst_block=WAN_BLOCK,
        n_sources=6,
        n_destinations=3,
    )


def _ack_flood_profile() -> FlowProfile:
    # ACK flood: minimum-size pure-ACK segments at sub-10ms spacing from a
    # botnet-scale pool.  Bypasses SYN-cookie defences and exercises any
    # stateful middlebox's established-connection table; the signature is
    # the same near-zero dispersion band as the other floods but with the
    # ACK bit instead of SYN.
    return FlowProfile(
        name="ack-flood",
        protocol=PROTO_TCP,
        dst_ports=(80, 443),
        size_mean_range=(60.0, 72.0),
        size_cov_range=FLOOD_COV,
        ipd_mean_range=(0.002, 0.006),
        ipd_cov_range=(0.005, 0.03),
        count_range=(300, 900),
        tcp_flags=FLAG_ACK,
        malicious=True,
        src_block=WAN_BLOCK,
        dst_block=LAN_BLOCK,
        n_sources=128,
        n_destinations=1,
    )


@dataclass(frozen=True)
class ReflectionSpec:
    """Shape of one reflection/amplification attack family.

    The attacker spoofs the victim's source address toward an open
    reflector; the vantage point therefore sees two packet streams of
    one flow: small ``victim → reflector`` requests and a much larger
    ``reflector → victim`` response train.  ``resp_per_req_range``
    (packets) times the response/request size ratio is the amplification
    factor — the fan-in asymmetry the detectors key on.

    Direction consistency is part of the contract: the response
    5-tuple is exactly ``request.reversed()``, so the canonical
    (direction-independent) tuple — and with it the flow-store slot and
    the cluster shard — is shared by both directions.
    """

    name: str
    port: int
    req_size_range: Tuple[float, float]
    resp_size_range: Tuple[float, float]
    resp_per_req_range: Tuple[int, int]
    req_count_range: Tuple[int, int]
    req_ipd_range: Tuple[float, float]
    n_reflectors: int = 32
    n_victims: int = 2
    #: Reflector service time between a request and its response burst.
    turnaround_s: float = 0.0005
    #: Gap between packets of one response burst.
    burst_ipd_s: float = 0.0002


#: DNS amplification (ANY/TXT queries against open resolvers): ~77 B
#: requests, near-MTU responses, 2-6 response packets per query —
#: a 30-100× byte amplification.
DNS_AMPLIFICATION = ReflectionSpec(
    name="dns-amplification",
    port=53,
    req_size_range=(68.0, 86.0),
    resp_size_range=(1100.0, 1400.0),
    resp_per_req_range=(2, 6),
    req_count_range=(8, 40),
    req_ipd_range=(0.002, 0.01),
    n_reflectors=48,
    n_victims=2,
)

#: NTP amplification (monlist): ~90 B requests, long trains of 440-482 B
#: response packets (the mode-7 MRU list) — up to ~200× amplification.
NTP_AMPLIFICATION = ReflectionSpec(
    name="ntp-amplification",
    port=123,
    req_size_range=(86.0, 94.0),
    resp_size_range=(440.0, 482.0),
    resp_per_req_range=(8, 40),
    req_count_range=(4, 20),
    req_ipd_range=(0.005, 0.02),
    n_reflectors=32,
    n_victims=2,
)


def reflection_flow(
    rng: np.random.Generator, start_time: float, spec: ReflectionSpec
) -> List[Packet]:
    """One reflection flow: spoofed requests plus the amplified response.

    Both directions share one canonical 5-tuple (the response tuple is
    ``request.reversed()`` — no fresh ephemeral port is drawn for the
    reflector side), which is what keeps request and response on the
    same flow-store slot and cluster shard.
    """
    victim = LAN_BLOCK + 1 + int(rng.integers(spec.n_victims))
    reflector = REFLECTOR_BLOCK + 1 + int(rng.integers(spec.n_reflectors))
    src_port = int(rng.integers(1024, 65535))
    req_ft = FiveTuple(victim, reflector, src_port, spec.port, PROTO_UDP)
    resp_ft = req_ft.reversed()

    n_req = int(rng.integers(spec.req_count_range[0], spec.req_count_range[1] + 1))
    req_ipd = rng.uniform(*spec.req_ipd_range)
    packets: List[Packet] = []
    t = start_time
    for _ in range(n_req):
        req_size = int(round(rng.uniform(*spec.req_size_range)))
        packets.append(
            Packet(five_tuple=req_ft, timestamp=t, size=req_size, ttl=64,
                   malicious=True)
        )
        n_resp = int(
            rng.integers(spec.resp_per_req_range[0], spec.resp_per_req_range[1] + 1)
        )
        rt = t + spec.turnaround_s
        for _ in range(n_resp):
            resp_size = int(round(rng.uniform(*spec.resp_size_range)))
            packets.append(
                Packet(five_tuple=resp_ft, timestamp=rt, size=resp_size, ttl=57,
                       malicious=True)
            )
            rt += spec.burst_ipd_s
        t += req_ipd
    packets.sort(key=lambda p: p.timestamp)
    return packets


def fragmentation_flow(
    rng: np.random.Generator,
    start_time: float,
    n_victims: int = 2,
    n_sources: int = 64,
) -> List[Packet]:
    """One fragmentation-DoS flow: trains of max-size fragments.

    Each oversized datagram arrives as several full-MTU frames plus one
    variable-size tail fragment, back to back; trains repeat on a fast
    timer.  The reassembly buffer is the target, so the signature is the
    bimodal size distribution (a pile at the MTU, a uniform tail) and
    the intra-train spacing far below any benign IPD band.
    """
    src = WAN_BLOCK + 1 + int(rng.integers(n_sources))
    dst = LAN_BLOCK + 1 + int(rng.integers(n_victims))
    ft = FiveTuple(src, dst, int(rng.integers(1024, 65535)),
                   int(rng.integers(1024, 65535)), PROTO_UDP)
    n_trains = int(rng.integers(4, 41))
    train_gap = rng.uniform(0.002, 0.008)
    packets: List[Packet] = []
    t = start_time
    for _ in range(n_trains):
        frags = int(rng.integers(3, 10))
        for j in range(frags):
            if j < frags - 1:
                size = MAX_PACKET_SIZE
            else:
                size = int(rng.integers(100, 1481))
            packets.append(
                Packet(five_tuple=ft, timestamp=t, size=size, ttl=64,
                       malicious=True)
            )
            t += 0.0002
        t += train_gap
    return packets


def route_flows(
    flows: List[List[Packet]],
    seed: SeedLike = None,
    jitter_floor: float = 0.0008,
    rate_filter: float = 1.0,
    ipd_stretch: float = 1.0,
) -> List[List[Packet]]:
    """Pass flows through the home-router/NAT model.

    Sources collapse to :data:`ROUTER_WAN_IP` with translated source
    ports, every inter-packet gap gains an exponential queueing delay of
    mean *jitter_floor* seconds, and TTLs drop by one hop.  ``rate_filter``
    keeps each packet with that probability (a router applying simple rate
    limiting, used by the "Mirai router filter" workload) and
    ``ipd_stretch`` scales the gaps (the rate limiter pacing what it does
    forward).
    """
    rng = as_rng(seed)
    next_port = 20000
    routed: List[List[Packet]] = []
    for flow in flows:
        if not flow:
            continue
        kept = [p for p in flow if rate_filter >= 1.0 or rng.random() < rate_filter]
        if not kept:
            kept = [flow[0]]
        ft = kept[0].five_tuple
        nat_ft = FiveTuple(ROUTER_WAN_IP, ft.dst_ip, next_port, ft.dst_port, ft.protocol)
        next_port = 20000 + (next_port - 20000 + 1) % 40000
        t = kept[0].timestamp
        out: List[Packet] = []
        prev_time = kept[0].timestamp
        for i, pkt in enumerate(kept):
            if i > 0:
                gap = (pkt.timestamp - prev_time) * ipd_stretch + rng.exponential(jitter_floor)
                t += gap
            prev_time = pkt.timestamp
            out.append(
                Packet(
                    five_tuple=nat_ft,
                    timestamp=t,
                    size=pkt.size,
                    ttl=max(1, pkt.ttl - 1),
                    tcp_flags=pkt.tcp_flags,
                    malicious=pkt.malicious,
                )
            )
        routed.append(out)
    return routed


GeneratorFn = Callable[[int, SeedLike], List[List[Packet]]]


def _plain(profile: FlowProfile, arrival_rate: float = 6.0) -> GeneratorFn:
    def generate(n_flows: int, seed: SeedLike = None) -> List[List[Packet]]:
        return ProfileMixture([profile]).generate_flows(
            n_flows, seed=seed, flow_arrival_rate=arrival_rate
        )

    return generate


def _routed(
    profile: FlowProfile,
    arrival_rate: float = 6.0,
    rate_filter: float = 1.0,
    ipd_stretch: float = 1.0,
) -> GeneratorFn:
    def generate(n_flows: int, seed: SeedLike = None) -> List[List[Packet]]:
        rng = as_rng(seed)
        flows = ProfileMixture([profile]).generate_flows(
            n_flows, seed=rng, flow_arrival_rate=arrival_rate
        )
        return route_flows(flows, seed=rng, rate_filter=rate_filter, ipd_stretch=ipd_stretch)

    return generate


def _flow_fn(
    flow_factory: Callable[[np.random.Generator, float], List[Packet]],
    arrival_rate: float = 8.0,
) -> GeneratorFn:
    """Lift a single-flow factory (reflection, fragmentation) into the
    ``(n_flows, seed) -> flows`` generator shape with Poisson arrivals."""

    def generate(n_flows: int, seed: SeedLike = None) -> List[List[Packet]]:
        rng = as_rng(seed)
        flows: List[List[Packet]] = []
        t = 0.0
        for _ in range(n_flows):
            t += rng.exponential(1.0 / arrival_rate)
            flows.append(flow_factory(rng, t))
        return flows

    return generate


#: Attack name → flow generator, using the paper's workload names.
ATTACK_GENERATORS: Dict[str, GeneratorFn] = {
    "Mirai": _plain(_mirai_profile()),
    "Aidra": _plain(_aidra_profile()),
    "Bashlite": _plain(_bashlite_profile()),
    "UDP DDoS": _plain(_udp_ddos_profile(), arrival_rate=12.0),
    "TCP DDoS": _plain(_tcp_ddos_profile(), arrival_rate=12.0),
    "HTTP DDoS": _plain(_http_ddos_profile(), arrival_rate=10.0),
    "OS scan": _plain(_os_scan_profile(), arrival_rate=30.0),
    "Service scan": _plain(_service_scan_profile(), arrival_rate=30.0),
    "Data theft": _plain(_data_theft_profile(), arrival_rate=2.0),
    "Keylogging": _plain(_keylogging_profile(), arrival_rate=2.0),
    "Mirai router filter": _routed(_mirai_profile(), rate_filter=0.7, ipd_stretch=3.0),
    "OS scan router": _routed(_os_scan_profile(), arrival_rate=30.0),
    "Port scan router": _routed(_port_scan_profile(), arrival_rate=30.0),
    "TCP DDoS router": _routed(_tcp_ddos_profile(), arrival_rate=12.0),
    "UDP DDoS router": _routed(_udp_ddos_profile(), arrival_rate=12.0),
    # Extended families (beyond the paper's 15 — the scenario foundry's
    # campaign catalogue; see EXTENDED_ATTACKS below).
    "DNS amplification": _flow_fn(
        lambda rng, t: reflection_flow(rng, t, DNS_AMPLIFICATION)
    ),
    "NTP amplification": _flow_fn(
        lambda rng, t: reflection_flow(rng, t, NTP_AMPLIFICATION)
    ),
    "ACK flood": _plain(_ack_flood_profile(), arrival_rate=12.0),
    "Fragmentation DoS": _flow_fn(fragmentation_flow),
}

#: Profile-based attack signatures by workload name, exported for the
#: scenario foundry's campaign factories (reflection and fragmentation
#: families are function-shaped — see ``reflection_flow`` /
#: ``fragmentation_flow`` — and have no entry here).
ATTACK_PROFILES: Dict[str, FlowProfile] = {
    "Mirai": _mirai_profile(),
    "Aidra": _aidra_profile(),
    "Bashlite": _bashlite_profile(),
    "UDP DDoS": _udp_ddos_profile(),
    "TCP DDoS": _tcp_ddos_profile(),
    "HTTP DDoS": _http_ddos_profile(),
    "OS scan": _os_scan_profile(),
    "Service scan": _service_scan_profile(),
    "Port scan": _port_scan_profile(),
    "Data theft": _data_theft_profile(),
    "Keylogging": _keylogging_profile(),
    "ACK flood": _ack_flood_profile(),
}

#: Canonical evaluation order: the 5 headline attacks (Figs 2, 5, 6)
#: followed by the 10 appendix attacks (Figs 7, 8, 9).
HEADLINE_ATTACKS = ("Aidra", "Mirai", "Bashlite", "UDP DDoS", "OS scan")
APPENDIX_ATTACKS = (
    "HTTP DDoS",
    "Data theft",
    "Keylogging",
    "Service scan",
    "TCP DDoS",
    "Mirai router filter",
    "OS scan router",
    "Port scan router",
    "TCP DDoS router",
    "UDP DDoS router",
)
ALL_ATTACKS = HEADLINE_ATTACKS + APPENDIX_ATTACKS

#: Families beyond the paper's 15 workloads (kept out of ``ALL_ATTACKS``
#: so the paper-figure harnesses keep their evaluation set): reflection
#: amplification, ACK flood, fragmentation DoS.
EXTENDED_ATTACKS = (
    "DNS amplification",
    "NTP amplification",
    "ACK flood",
    "Fragmentation DoS",
)


def generate_attack_flows(name: str, n_flows: int, seed: SeedLike = None) -> List[List[Packet]]:
    """Generate flows for the named attack workload.

    Raises ``KeyError`` with the list of valid names on a typo.
    """
    try:
        generator = ATTACK_GENERATORS[name]
    except KeyError:
        raise KeyError(
            f"unknown attack {name!r}; valid names: {sorted(ATTACK_GENERATORS)}"
        ) from None
    return generator(n_flows, seed)
