"""Attack traffic generators for the paper's 15 attack workloads.

Each generator reproduces the *feature-level* signature of the named
attack from the datasets the paper uses (Bezerra et al. IoT host traces,
Ding's IoT malware corpus, HorusEye, Bot-IoT, Kitsune).  The profiles are
deliberately placed **inside** the benign per-feature marginals but **off**
the benign manifold (see :mod:`repro.datasets.profiles`): floods use
near-constant packet sizes and metronomic inter-packet delays (dispersion
far below the benign coefficient-of-variation band), exfiltration pairs
full-MTU packets with slow drips (a joint no benign device exhibits),
keyloggers produce burstiness above the benign band, and scans emit
swarms of one-packet flows.

The five ``* router`` workloads model the same attacks observed behind a
home router/NAT (as in the paper's router-filtered captures): sources are
collapsed to the router's WAN address with port translation, a queueing
jitter floor is added, and TTLs are decremented.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from repro.datasets.packet import (
    FLAG_ACK,
    FLAG_PSH,
    FLAG_SYN,
    PROTO_TCP,
    PROTO_UDP,
    FiveTuple,
    Packet,
    make_ip,
)
from repro.datasets.profiles import LAN_BLOCK, WAN_BLOCK, FlowProfile, ProfileMixture
from repro.utils.rng import SeedLike, as_rng

#: Router WAN address used by the NAT model.
ROUTER_WAN_IP = make_ip(198, 51, 100, 1)

#: Dispersion bands violated by attacks (cf. benign bands in benign.py).
FLOOD_COV = (0.0, 0.02)
SCAN_PORTS = (21, 22, 23, 25, 53, 80, 110, 135, 139, 143, 443, 445, 3389, 8080)


def _mirai_profile() -> FlowProfile:
    # Telnet scanning / brute force: tiny constant SYN+credential packets,
    # metronomic retry timer, botnet-scale source pool.
    return FlowProfile(
        name="mirai",
        protocol=PROTO_TCP,
        dst_ports=(23, 2323),
        size_mean_range=(62.0, 72.0),
        size_cov_range=(0.0, 0.02),
        ipd_mean_range=(0.05, 0.12),
        ipd_cov_range=(0.02, 0.06),
        count_range=(20, 120),
        tcp_flags=FLAG_SYN,
        malicious=True,
        src_block=WAN_BLOCK,
        dst_block=LAN_BLOCK,
        n_sources=64,
        n_destinations=16,
    )


def _aidra_profile() -> FlowProfile:
    # Aidra/LightAidra IRC botnet: telnet probes slightly slower and more
    # varied than Mirai's.
    return FlowProfile(
        name="aidra",
        protocol=PROTO_TCP,
        dst_ports=(23,),
        size_mean_range=(64.0, 82.0),
        size_cov_range=(0.005, 0.03),
        ipd_mean_range=(0.1, 0.25),
        ipd_cov_range=(0.03, 0.08),
        count_range=(10, 60),
        tcp_flags=FLAG_SYN,
        malicious=True,
        src_block=WAN_BLOCK,
        dst_block=LAN_BLOCK,
        n_sources=48,
        n_destinations=16,
    )


def _bashlite_profile() -> FlowProfile:
    # Bashlite/Gafgyt UDP flood: mid-size constant payloads at kHz rates.
    return FlowProfile(
        name="bashlite",
        protocol=PROTO_UDP,
        dst_ports=(80, 8080, 10000),
        size_mean_range=(520.0, 580.0),
        size_cov_range=FLOOD_COV,
        ipd_mean_range=(0.003, 0.007),
        ipd_cov_range=(0.01, 0.05),
        count_range=(250, 900),
        malicious=True,
        src_block=LAN_BLOCK,
        dst_block=WAN_BLOCK,
        n_sources=16,
        n_destinations=2,
    )


def _udp_ddos_profile() -> FlowProfile:
    return FlowProfile(
        name="udp-ddos",
        protocol=PROTO_UDP,
        dst_ports=(53, 80, 123),
        size_mean_range=(470.0, 530.0),
        size_cov_range=FLOOD_COV,
        ipd_mean_range=(0.002, 0.005),
        ipd_cov_range=(0.005, 0.03),
        count_range=(300, 900),
        malicious=True,
        src_block=WAN_BLOCK,
        dst_block=LAN_BLOCK,
        n_sources=128,
        n_destinations=1,
    )


def _tcp_ddos_profile() -> FlowProfile:
    # SYN flood: minimum-size segments, sub-ms spacing.
    return FlowProfile(
        name="tcp-ddos",
        protocol=PROTO_TCP,
        dst_ports=(80, 443),
        size_mean_range=(62.0, 80.0),
        size_cov_range=FLOOD_COV,
        ipd_mean_range=(0.003, 0.008),
        ipd_cov_range=(0.005, 0.03),
        count_range=(300, 1000),
        tcp_flags=FLAG_SYN,
        malicious=True,
        src_block=WAN_BLOCK,
        dst_block=LAN_BLOCK,
        n_sources=128,
        n_destinations=1,
    )


def _http_ddos_profile() -> FlowProfile:
    # HTTP GET flood: templated requests, rhythm far steadier than human
    # or device-driven web traffic.
    return FlowProfile(
        name="http-ddos",
        protocol=PROTO_TCP,
        dst_ports=(80,),
        size_mean_range=(320.0, 380.0),
        size_cov_range=(0.01, 0.05),
        ipd_mean_range=(0.015, 0.03),
        ipd_cov_range=(0.02, 0.05),
        count_range=(100, 400),
        tcp_flags=FLAG_ACK | FLAG_PSH,
        malicious=True,
        src_block=WAN_BLOCK,
        dst_block=LAN_BLOCK,
        n_sources=96,
        n_destinations=1,
    )


def _os_scan_profile() -> FlowProfile:
    # Nmap-style OS fingerprinting: swarms of 1-2 packet SYN probes with
    # crafted TTLs across many ports.
    return FlowProfile(
        name="os-scan",
        protocol=PROTO_TCP,
        dst_ports=SCAN_PORTS,
        size_mean_range=(60.0, 64.0),
        size_cov_range=(0.0, 0.01),
        ipd_mean_range=(0.01, 0.05),
        ipd_cov_range=(0.05, 0.15),
        count_range=(1, 3),
        ttl_choices=(32, 64, 128, 255),
        tcp_flags=FLAG_SYN,
        malicious=True,
        src_block=WAN_BLOCK,
        dst_block=LAN_BLOCK,
        n_sources=4,
        n_destinations=24,
    )


def _service_scan_profile() -> FlowProfile:
    # Horizontal service sweep: the same few service ports probed across
    # every host in the block.
    return FlowProfile(
        name="service-scan",
        protocol=PROTO_TCP,
        dst_ports=(22, 23, 80, 443, 445),
        size_mean_range=(60.0, 74.0),
        size_cov_range=(0.0, 0.02),
        ipd_mean_range=(0.02, 0.08),
        ipd_cov_range=(0.05, 0.2),
        count_range=(1, 3),
        tcp_flags=FLAG_SYN,
        malicious=True,
        src_block=WAN_BLOCK,
        dst_block=LAN_BLOCK,
        n_sources=4,
        n_destinations=64,
    )


def _port_scan_profile() -> FlowProfile:
    # Vertical port scan of a single host: one probe per port.
    return FlowProfile(
        name="port-scan",
        protocol=PROTO_TCP,
        dst_ports=tuple(range(1, 1024, 7)),
        size_mean_range=(60.0, 64.0),
        size_cov_range=(0.0, 0.01),
        ipd_mean_range=(0.005, 0.02),
        ipd_cov_range=(0.02, 0.1),
        count_range=(1, 2),
        tcp_flags=FLAG_SYN,
        malicious=True,
        src_block=WAN_BLOCK,
        dst_block=LAN_BLOCK,
        n_sources=2,
        n_destinations=4,
    )


def _data_theft_profile() -> FlowProfile:
    # Slow exfiltration over TLS: full-MTU packets on a drip timer — a
    # (size, IPD) joint no benign device produces (bulk transfers are fast,
    # slow flows are small).
    return FlowProfile(
        name="data-theft",
        protocol=PROTO_TCP,
        dst_ports=(443,),
        size_mean_range=(1350.0, 1450.0),
        size_cov_range=(0.02, 0.06),
        ipd_mean_range=(0.3, 0.8),
        ipd_cov_range=(0.05, 0.15),
        count_range=(20, 80),
        tcp_flags=FLAG_ACK | FLAG_PSH,
        malicious=True,
        src_block=LAN_BLOCK,
        dst_block=WAN_BLOCK,
        n_sources=6,
        n_destinations=3,
    )


def _keylogging_profile() -> FlowProfile:
    # Keystroke exfil to an IRC-style C2: tiny packets in human-typing
    # bursts — dispersion far above the benign jitter band.
    return FlowProfile(
        name="keylogging",
        protocol=PROTO_TCP,
        dst_ports=(6667, 1337),
        size_mean_range=(62.0, 90.0),
        size_cov_range=(0.25, 0.5),
        ipd_mean_range=(0.15, 0.5),
        ipd_cov_range=(0.8, 1.6),
        count_range=(20, 100),
        tcp_flags=FLAG_ACK | FLAG_PSH,
        malicious=True,
        src_block=LAN_BLOCK,
        dst_block=WAN_BLOCK,
        n_sources=6,
        n_destinations=3,
    )


def route_flows(
    flows: List[List[Packet]],
    seed: SeedLike = None,
    jitter_floor: float = 0.0008,
    rate_filter: float = 1.0,
    ipd_stretch: float = 1.0,
) -> List[List[Packet]]:
    """Pass flows through the home-router/NAT model.

    Sources collapse to :data:`ROUTER_WAN_IP` with translated source
    ports, every inter-packet gap gains an exponential queueing delay of
    mean *jitter_floor* seconds, and TTLs drop by one hop.  ``rate_filter``
    keeps each packet with that probability (a router applying simple rate
    limiting, used by the "Mirai router filter" workload) and
    ``ipd_stretch`` scales the gaps (the rate limiter pacing what it does
    forward).
    """
    rng = as_rng(seed)
    next_port = 20000
    routed: List[List[Packet]] = []
    for flow in flows:
        if not flow:
            continue
        kept = [p for p in flow if rate_filter >= 1.0 or rng.random() < rate_filter]
        if not kept:
            kept = [flow[0]]
        ft = kept[0].five_tuple
        nat_ft = FiveTuple(ROUTER_WAN_IP, ft.dst_ip, next_port, ft.dst_port, ft.protocol)
        next_port = 20000 + (next_port - 20000 + 1) % 40000
        t = kept[0].timestamp
        out: List[Packet] = []
        prev_time = kept[0].timestamp
        for i, pkt in enumerate(kept):
            if i > 0:
                gap = (pkt.timestamp - prev_time) * ipd_stretch + rng.exponential(jitter_floor)
                t += gap
            prev_time = pkt.timestamp
            out.append(
                Packet(
                    five_tuple=nat_ft,
                    timestamp=t,
                    size=pkt.size,
                    ttl=max(1, pkt.ttl - 1),
                    tcp_flags=pkt.tcp_flags,
                    malicious=pkt.malicious,
                )
            )
        routed.append(out)
    return routed


GeneratorFn = Callable[[int, SeedLike], List[List[Packet]]]


def _plain(profile: FlowProfile, arrival_rate: float = 6.0) -> GeneratorFn:
    def generate(n_flows: int, seed: SeedLike = None) -> List[List[Packet]]:
        return ProfileMixture([profile]).generate_flows(
            n_flows, seed=seed, flow_arrival_rate=arrival_rate
        )

    return generate


def _routed(
    profile: FlowProfile,
    arrival_rate: float = 6.0,
    rate_filter: float = 1.0,
    ipd_stretch: float = 1.0,
) -> GeneratorFn:
    def generate(n_flows: int, seed: SeedLike = None) -> List[List[Packet]]:
        rng = as_rng(seed)
        flows = ProfileMixture([profile]).generate_flows(
            n_flows, seed=rng, flow_arrival_rate=arrival_rate
        )
        return route_flows(flows, seed=rng, rate_filter=rate_filter, ipd_stretch=ipd_stretch)

    return generate


#: Attack name → flow generator, using the paper's workload names.
ATTACK_GENERATORS: Dict[str, GeneratorFn] = {
    "Mirai": _plain(_mirai_profile()),
    "Aidra": _plain(_aidra_profile()),
    "Bashlite": _plain(_bashlite_profile()),
    "UDP DDoS": _plain(_udp_ddos_profile(), arrival_rate=12.0),
    "TCP DDoS": _plain(_tcp_ddos_profile(), arrival_rate=12.0),
    "HTTP DDoS": _plain(_http_ddos_profile(), arrival_rate=10.0),
    "OS scan": _plain(_os_scan_profile(), arrival_rate=30.0),
    "Service scan": _plain(_service_scan_profile(), arrival_rate=30.0),
    "Data theft": _plain(_data_theft_profile(), arrival_rate=2.0),
    "Keylogging": _plain(_keylogging_profile(), arrival_rate=2.0),
    "Mirai router filter": _routed(_mirai_profile(), rate_filter=0.7, ipd_stretch=3.0),
    "OS scan router": _routed(_os_scan_profile(), arrival_rate=30.0),
    "Port scan router": _routed(_port_scan_profile(), arrival_rate=30.0),
    "TCP DDoS router": _routed(_tcp_ddos_profile(), arrival_rate=12.0),
    "UDP DDoS router": _routed(_udp_ddos_profile(), arrival_rate=12.0),
}

#: Canonical evaluation order: the 5 headline attacks (Figs 2, 5, 6)
#: followed by the 10 appendix attacks (Figs 7, 8, 9).
HEADLINE_ATTACKS = ("Aidra", "Mirai", "Bashlite", "UDP DDoS", "OS scan")
APPENDIX_ATTACKS = (
    "HTTP DDoS",
    "Data theft",
    "Keylogging",
    "Service scan",
    "TCP DDoS",
    "Mirai router filter",
    "OS scan router",
    "Port scan router",
    "TCP DDoS router",
    "UDP DDoS router",
)
ALL_ATTACKS = HEADLINE_ATTACKS + APPENDIX_ATTACKS


def generate_attack_flows(name: str, n_flows: int, seed: SeedLike = None) -> List[List[Packet]]:
    """Generate flows for the named attack workload.

    Raises ``KeyError`` with the list of valid names on a typo.
    """
    try:
        generator = ATTACK_GENERATORS[name]
    except KeyError:
        raise KeyError(
            f"unknown attack {name!r}; valid names: {sorted(ATTACK_GENERATORS)}"
        ) from None
    return generator(n_flows, seed)
