"""Packet-level primitives.

The simulator and feature extractors operate on light-weight packet
records rather than raw bytes: for iGuard only the header-derived
quantities matter (5-tuple, size, timestamp, TTL, TCP flags).  A
:class:`Packet` therefore carries exactly the fields the paper's feature
extractors read, plus a ground-truth ``malicious`` bit used only for
evaluation (never visible to the models).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple

# IANA protocol numbers used throughout the traffic generators.
PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17

# TCP flag bits (subset used by the generators).
FLAG_FIN = 0x01
FLAG_SYN = 0x02
FLAG_RST = 0x04
FLAG_PSH = 0x08
FLAG_ACK = 0x10

#: Minimum / maximum sizes of an Ethernet frame carrying IPv4, in bytes.
MIN_PACKET_SIZE = 60
MAX_PACKET_SIZE = 1514


@dataclass(frozen=True, order=True)
class FiveTuple:
    """Connection identifier: (src IP, dst IP, src port, dst port, protocol).

    IPs are stored as 32-bit integers; this keeps hashing and the switch
    simulator's register indexing simple and fast.
    """

    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    protocol: int

    def reversed(self) -> "FiveTuple":
        """Return the 5-tuple of the opposite direction of the same flow."""
        return FiveTuple(self.dst_ip, self.src_ip, self.dst_port, self.src_port, self.protocol)

    def canonical(self) -> "FiveTuple":
        """Direction-independent form: the lexicographically smaller of the
        two directions.  Both directions of a flow map to the same value,
        which is what the switch's bi-hash indexing needs."""
        rev = self.reversed()
        return self if (self.src_ip, self.src_port) <= (rev.src_ip, rev.src_port) else rev

    def as_tuple(self) -> Tuple[int, int, int, int, int]:
        """Plain-tuple form, handy for hashing and dict keys."""
        return (self.src_ip, self.dst_ip, self.src_port, self.dst_port, self.protocol)


@dataclass(frozen=True)
class Packet:
    """A single observed packet.

    Attributes
    ----------
    five_tuple:
        Connection identifier.
    timestamp:
        Arrival time in seconds (float, trace-relative).
    size:
        Total frame size in bytes, clamped to Ethernet limits by generators.
    ttl:
        IP time-to-live as seen at the observation point.
    tcp_flags:
        OR-ed TCP flag bits; 0 for non-TCP packets.
    malicious:
        Ground-truth label for evaluation.  The data plane and all models
        never read this field.
    """

    five_tuple: FiveTuple
    timestamp: float
    size: int
    ttl: int = 64
    tcp_flags: int = 0
    malicious: bool = False

    def with_timestamp(self, timestamp: float) -> "Packet":
        """Copy of this packet at a different time (used by replay tools)."""
        return replace(self, timestamp=timestamp)

    def with_five_tuple(self, five_tuple: FiveTuple) -> "Packet":
        """Copy of this packet re-addressed (used by the router/NAT model)."""
        return replace(self, five_tuple=five_tuple)


def make_ip(a: int, b: int, c: int, d: int) -> int:
    """Pack dotted-quad components into the 32-bit integer format used by
    :class:`FiveTuple` (e.g. ``make_ip(10, 0, 0, 1)``)."""
    for octet in (a, b, c, d):
        if not 0 <= octet <= 255:
            raise ValueError(f"IP octet out of range: {octet}")
    return (a << 24) | (b << 16) | (c << 8) | d


def format_ip(ip: int) -> str:
    """Render a 32-bit integer IP as a dotted quad (for logs and repr)."""
    return f"{(ip >> 24) & 0xFF}.{(ip >> 16) & 0xFF}.{(ip >> 8) & 0xFF}.{ip & 0xFF}"
