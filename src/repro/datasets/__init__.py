"""Traffic substrate: packets, traces, benign/attack/adversarial generators,
and the HorusEye-protocol dataset splits used throughout the evaluation."""

from repro.datasets.adversarial import (
    evasion_flows,
    low_rate_flows,
    poison_training_flows,
    poison_training_set,
)
from repro.datasets.attacks import (
    ALL_ATTACKS,
    APPENDIX_ATTACKS,
    ATTACK_GENERATORS,
    HEADLINE_ATTACKS,
    generate_attack_flows,
    route_flows,
)
from repro.datasets.benign import (
    benign_mixture,
    device_profiles,
    generate_benign_flows,
    generate_benign_trace,
)
from repro.datasets.pcap import read_pcap, write_pcap
from repro.datasets.packet import (
    PROTO_ICMP,
    PROTO_TCP,
    PROTO_UDP,
    FiveTuple,
    Packet,
    format_ip,
    make_ip,
)
from repro.datasets.profiles import FlowProfile, ProfileMixture
from repro.datasets.registry import (
    appendix_attack_names,
    attack_names,
    headline_attack_names,
    load_attack,
    load_benign,
)
from repro.datasets.splits import (
    DatasetSplit,
    DriftTraceSplit,
    TraceSplit,
    make_attack_split,
    make_drift_split,
    make_trace_split,
    split_benign_indices,
)
from repro.datasets.trace import Trace, flows_to_trace, merge_traces

__all__ = [
    "ALL_ATTACKS",
    "APPENDIX_ATTACKS",
    "ATTACK_GENERATORS",
    "HEADLINE_ATTACKS",
    "PROTO_ICMP",
    "PROTO_TCP",
    "PROTO_UDP",
    "DatasetSplit",
    "DriftTraceSplit",
    "FiveTuple",
    "FlowProfile",
    "Packet",
    "ProfileMixture",
    "Trace",
    "TraceSplit",
    "appendix_attack_names",
    "attack_names",
    "benign_mixture",
    "device_profiles",
    "evasion_flows",
    "flows_to_trace",
    "format_ip",
    "generate_attack_flows",
    "generate_benign_flows",
    "generate_benign_trace",
    "headline_attack_names",
    "load_attack",
    "load_benign",
    "low_rate_flows",
    "make_attack_split",
    "make_drift_split",
    "make_ip",
    "make_trace_split",
    "merge_traces",
    "poison_training_flows",
    "poison_training_set",
    "read_pcap",
    "route_flows",
    "split_benign_indices",
    "write_pcap",
]
