"""Black-box adversarial traffic transforms (paper Tables 2 and 3).

Following HorusEye's threat model, the attacker cannot inspect the model
but can reshape their own traffic (low-rate, evasion padding) or
contaminate the benign training capture (poisoning).

* **Low rate** (``low_rate_flows``): the attacker slows transmission to a
  fraction of the original rate (the paper's "UDPDDoS 1/100"), defeating
  detectors keyed on raw packet rate.
* **Evasion** (``evasion_flows``): the attacker pads each malicious flow
  with benign-mimicking packets at a malicious:benign packet ratio (the
  paper's 1:2 and 1:4), dragging the flow's aggregate features toward the
  benign region.
* **Poisoning** (``poison_training_flows`` / ``poison_training_set``):
  a fraction of attack traffic is slipped into the benign training capture
  (the paper's "Mirai 2%/10%"), corrupting what the models learn as
  "normal".
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.datasets.packet import MAX_PACKET_SIZE, MIN_PACKET_SIZE, Packet
from repro.utils.rng import SeedLike, as_rng


def low_rate_flows(flows: List[List[Packet]], factor: float) -> List[List[Packet]]:
    """Stretch every inter-packet gap by *factor* (rate becomes 1/factor).

    Packet contents are untouched; only timing changes, exactly as an
    attacker throttling their sender would achieve.
    """
    if factor < 1.0:
        raise ValueError(f"factor must be >= 1 (a slowdown), got {factor}")
    slowed: List[List[Packet]] = []
    for flow in flows:
        if not flow:
            continue
        t0 = flow[0].timestamp
        out = [flow[0]]
        for prev, pkt in zip(flow, flow[1:]):
            gap = (pkt.timestamp - prev.timestamp) * factor
            out.append(pkt.with_timestamp(out[-1].timestamp + gap))
        slowed.append(out)
    return slowed


def evasion_flows(
    flows: List[List[Packet]],
    benign_per_malicious: float,
    seed: SeedLike = None,
    pad_size_mean: float = 420.0,
    pad_size_cov: float = 0.12,
) -> List[List[Packet]]:
    """Pad flows with benign-mimicking packets.

    *benign_per_malicious* is the injected-to-original packet ratio: the
    paper's "1:2" mixes one benign-looking filler per two malicious
    packets (0.5 here); values ≥ 1 inject that many fillers after every
    original packet.  Filler sizes imitate a benign device class
    (on-manifold dispersion) and their timing subdivides the original
    gaps.  The injected packets still belong to the malicious flow (they
    share its 5-tuple and carry the ground-truth malicious bit): the
    attack is that the *flow's aggregate features* drift toward benign.
    """
    if benign_per_malicious <= 0:
        raise ValueError(
            f"benign_per_malicious must be > 0, got {benign_per_malicious}"
        )
    rng = as_rng(seed)
    per_packet = max(1, int(round(benign_per_malicious)))
    # Fractional ratios < 1 pad after every (1/ratio)-th original packet.
    stride = max(1, int(round(1.0 / benign_per_malicious))) if benign_per_malicious < 1 else 1
    padded: List[List[Packet]] = []
    for flow in flows:
        if not flow:
            continue
        out: List[Packet] = []
        for i, pkt in enumerate(flow):
            out.append(pkt)
            if i % stride != stride - 1:
                continue
            next_t = flow[i + 1].timestamp if i + 1 < len(flow) else pkt.timestamp + 0.05
            gap = max(next_t - pkt.timestamp, 1e-4)
            step = gap / (per_packet + 1)
            for j in range(per_packet):
                size = int(
                    np.clip(
                        rng.normal(pad_size_mean, pad_size_cov * pad_size_mean),
                        MIN_PACKET_SIZE,
                        MAX_PACKET_SIZE,
                    )
                )
                out.append(
                    Packet(
                        five_tuple=pkt.five_tuple,
                        timestamp=pkt.timestamp + step * (j + 1),
                        size=size,
                        ttl=pkt.ttl,
                        tcp_flags=pkt.tcp_flags,
                        malicious=True,
                    )
                )
        out.sort(key=lambda p: p.timestamp)
        padded.append(out)
    return padded


def poison_training_flows(
    benign_flows: List[List[Packet]],
    attack_flows: List[List[Packet]],
    fraction: float,
    seed: SeedLike = None,
) -> List[List[Packet]]:
    """Contaminate a benign training capture with attack flows.

    *fraction* is the poisoned share of the returned training set, e.g.
    0.02 for the paper's "Mirai 2%".  Attack flows are sampled with
    replacement if too few are supplied.
    """
    if not 0.0 <= fraction < 1.0:
        raise ValueError(f"fraction must be in [0, 1), got {fraction}")
    if fraction == 0.0:
        return list(benign_flows)
    rng = as_rng(seed)
    n_poison = max(1, round(len(benign_flows) * fraction / (1.0 - fraction)))
    idx = rng.integers(len(attack_flows), size=n_poison)
    poisoned = list(benign_flows) + [attack_flows[int(i)] for i in idx]
    rng.shuffle(poisoned)
    return poisoned


def poison_training_set(
    x_benign: np.ndarray,
    x_attack: np.ndarray,
    fraction: float,
    seed: SeedLike = None,
) -> np.ndarray:
    """Feature-level poisoning: return a training matrix in which
    *fraction* of the rows are attack samples (paper Table 2)."""
    if not 0.0 <= fraction < 1.0:
        raise ValueError(f"fraction must be in [0, 1), got {fraction}")
    x_benign = np.asarray(x_benign, dtype=float)
    if fraction == 0.0:
        return x_benign.copy()
    x_attack = np.asarray(x_attack, dtype=float)
    rng = as_rng(seed)
    n_poison = max(1, round(len(x_benign) * fraction / (1.0 - fraction)))
    idx = rng.integers(len(x_attack), size=n_poison)
    poisoned = np.vstack([x_benign, x_attack[idx]])
    rng.shuffle(poisoned, axis=0)
    return poisoned
