"""Generic flow-profile machinery shared by benign and attack generators.

A :class:`FlowProfile` describes the *statistical signature* of one kind
of traffic: packet-size location and dispersion, inter-packet-delay (IPD)
location and dispersion, flow length, addressing, protocol, flags, TTL.

The central modelling decision (documented in DESIGN.md §1) is that benign
traffic lives on a *manifold*: packet-size dispersion is proportional to
the size mean (a narrow band of coefficient of variation), IPD jitter is
proportional to the IPD mean, and (size mean, IPD mean) pairs cluster by
device class.  Attack profiles are constructed to overlap benign traffic
in every per-feature *marginal* while breaking those joint relationships
— e.g. constant-size floods (dispersion far below the benign band) or
slow large-packet exfiltration (a (size, IPD) pair no benign device
produces).  This reproduces the paper's Fig 2 phenomenon: conventional
iForests, which isolate on axis-parallel marginals, cannot separate the
classes, while autoencoders trained on benign data flag the broken
correlations through reconstruction error.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.packet import (
    FLAG_ACK,
    FLAG_SYN,
    MAX_PACKET_SIZE,
    MIN_PACKET_SIZE,
    PROTO_TCP,
    PROTO_UDP,
    FiveTuple,
    Packet,
    make_ip,
)
from repro.utils.rng import SeedLike, as_rng

#: Address blocks used by the generators (documentation more than function).
LAN_BLOCK = make_ip(192, 168, 1, 0)
WAN_BLOCK = make_ip(203, 0, 113, 0)


def _log_uniform(rng: np.random.Generator, lo: float, hi: float) -> float:
    """Draw from a log-uniform distribution on [lo, hi] (lo > 0)."""
    if lo <= 0:
        raise ValueError(f"log-uniform lower bound must be > 0, got {lo}")
    return float(np.exp(rng.uniform(np.log(lo), np.log(hi))))


@dataclass(frozen=True)
class FlowProfile:
    """Statistical signature of one traffic class.

    Ranges are (low, high) pairs; per-flow parameters are drawn uniformly
    (counts log-uniformly) from them, then per-packet values are drawn
    around the flow parameters.

    Attributes
    ----------
    name:
        Human-readable profile name (device class or attack name).
    protocol:
        IANA protocol number for all packets of the flow.
    dst_ports:
        Candidate destination ports; one is chosen per flow (scans override
        this behaviour via ``port_sweep``).
    size_mean_range / size_cov_range:
        Per-flow packet-size mean (bytes) and coefficient of variation.
        Benign profiles keep the CoV inside the manifold band; floods use
        a near-zero CoV, some attacks an inflated one.
    ipd_mean_range / ipd_cov_range:
        Per-flow inter-packet delay mean (seconds) and CoV.
    count_range:
        Packets per flow, drawn log-uniformly.
    ttl_choices:
        TTLs observed at the vantage point.
    tcp_flags:
        Flag bits set on TCP packets (0 for UDP).
    malicious:
        Ground-truth label stamped on every generated packet.
    port_sweep:
        If True, each *packet* of the flow targets a different destination
        port (vertical scan behaviour); the flow's 5-tuple still uses the
        first port so stateful indexing matches real scanner traces where
        each probe is its own flow — scan generators therefore emit many
        one-packet flows instead.
    src_block / dst_block:
        /24 bases for source and destination addresses.
    n_sources / n_destinations:
        Size of the address pools the generator draws from; large source
        pools model botnets, single-destination pools model a victim.
    """

    name: str
    protocol: int
    dst_ports: Tuple[int, ...]
    size_mean_range: Tuple[float, float]
    size_cov_range: Tuple[float, float]
    ipd_mean_range: Tuple[float, float]
    ipd_cov_range: Tuple[float, float]
    count_range: Tuple[int, int]
    ttl_choices: Tuple[int, ...] = (64,)
    tcp_flags: int = FLAG_ACK
    malicious: bool = False
    port_sweep: bool = False
    src_block: int = LAN_BLOCK
    dst_block: int = WAN_BLOCK
    n_sources: int = 24
    n_destinations: int = 8

    def sample_five_tuple(self, rng: np.random.Generator) -> FiveTuple:
        """Draw a flow 5-tuple from the profile's address pools."""
        src_ip = self.src_block + 1 + int(rng.integers(self.n_sources))
        dst_ip = self.dst_block + 1 + int(rng.integers(self.n_destinations))
        src_port = int(rng.integers(1024, 65535))
        dst_port = int(self.dst_ports[int(rng.integers(len(self.dst_ports)))])
        return FiveTuple(src_ip, dst_ip, src_port, dst_port, self.protocol)

    def sample_flow(
        self,
        rng: np.random.Generator,
        start_time: float,
        five_tuple: Optional[FiveTuple] = None,
    ) -> List[Packet]:
        """Generate one flow's packets beginning at *start_time*."""
        ft = five_tuple if five_tuple is not None else self.sample_five_tuple(rng)
        count = max(1, round(_log_uniform(rng, self.count_range[0], self.count_range[1])))

        size_mean = rng.uniform(*self.size_mean_range)
        size_cov = rng.uniform(*self.size_cov_range)
        ipd_mean = _log_uniform(rng, self.ipd_mean_range[0], self.ipd_mean_range[1])
        ipd_cov = rng.uniform(*self.ipd_cov_range)

        sizes = rng.normal(size_mean, size_cov * size_mean, size=count)
        sizes = np.clip(np.round(sizes), MIN_PACKET_SIZE, MAX_PACKET_SIZE).astype(int)

        # Gamma-distributed IPDs give realistic positive jitter with the
        # requested mean and coefficient of variation.
        if count > 1:
            if ipd_cov < 1e-6:
                ipds = np.full(count - 1, ipd_mean)
            else:
                shape = 1.0 / (ipd_cov**2)
                ipds = rng.gamma(shape, ipd_mean / shape, size=count - 1)
            times = start_time + np.concatenate([[0.0], np.cumsum(ipds)])
        else:
            times = np.array([start_time])

        ttl = int(self.ttl_choices[int(rng.integers(len(self.ttl_choices)))])
        flags = self.tcp_flags if self.protocol == PROTO_TCP else 0

        packets: List[Packet] = []
        for i in range(count):
            pkt_ft = ft
            if self.port_sweep:
                swept = FiveTuple(
                    ft.src_ip,
                    ft.dst_ip,
                    ft.src_port,
                    int(self.dst_ports[i % len(self.dst_ports)]),
                    ft.protocol,
                )
                pkt_ft = swept
            packets.append(
                Packet(
                    five_tuple=pkt_ft,
                    timestamp=float(times[i]),
                    size=int(sizes[i]),
                    ttl=ttl,
                    tcp_flags=flags,
                    malicious=self.malicious,
                )
            )
        return packets


@dataclass
class ProfileMixture:
    """Weighted mixture of flow profiles generating a stream of flows.

    Used for benign traffic (a mixture of device classes) and for attacks
    composed of several behaviours.
    """

    profiles: Sequence[FlowProfile]
    weights: Optional[Sequence[float]] = None

    def __post_init__(self) -> None:
        if not self.profiles:
            raise ValueError("ProfileMixture requires at least one profile")
        if self.weights is None:
            self.weights = [1.0 / len(self.profiles)] * len(self.profiles)
        w = np.asarray(self.weights, dtype=float)
        if len(w) != len(self.profiles):
            raise ValueError("weights and profiles must have the same length")
        if np.any(w < 0) or w.sum() <= 0:
            raise ValueError("weights must be non-negative and sum to > 0")
        self.weights = list(w / w.sum())

    def generate_flows(
        self,
        n_flows: int,
        seed: SeedLike = None,
        flow_arrival_rate: float = 2.0,
    ) -> List[List[Packet]]:
        """Generate *n_flows* flows with Poisson flow arrivals.

        Parameters
        ----------
        n_flows:
            Number of flows to emit.
        seed:
            RNG seed.
        flow_arrival_rate:
            Mean flow arrivals per second (exponential inter-arrivals).
        """
        if n_flows < 0:
            raise ValueError(f"n_flows must be non-negative, got {n_flows}")
        rng = as_rng(seed)
        flows: List[List[Packet]] = []
        t = 0.0
        indices = rng.choice(len(self.profiles), size=n_flows, p=self.weights)
        for idx in indices:
            t += rng.exponential(1.0 / flow_arrival_rate)
            flows.append(self.profiles[int(idx)].sample_flow(rng, t))
        return flows
