"""Named dataset registry.

Maps the paper's workload names to generators so harnesses, benchmarks,
and examples all address datasets the same way the paper's figures do.
"""

from __future__ import annotations

from typing import List

from repro.datasets.attacks import (
    ALL_ATTACKS,
    APPENDIX_ATTACKS,
    ATTACK_GENERATORS,
    EXTENDED_ATTACKS,
    HEADLINE_ATTACKS,
    generate_attack_flows,
)
from repro.datasets.benign import generate_benign_flows, generate_benign_trace
from repro.datasets.packet import Packet
from repro.utils.rng import SeedLike


def attack_names() -> List[str]:
    """All 15 attack workload names in the paper's evaluation order."""
    return list(ALL_ATTACKS)


def headline_attack_names() -> List[str]:
    """The 5 attacks of the main-body figures (Figs 2, 5, 6)."""
    return list(HEADLINE_ATTACKS)


def appendix_attack_names() -> List[str]:
    """The 10 attacks of the appendix figures (Figs 7, 8, 9)."""
    return list(APPENDIX_ATTACKS)


def extended_attack_names() -> List[str]:
    """Families beyond the paper's 15 workloads (amplification, ACK
    flood, fragmentation DoS) — the scenario foundry's extra catalogue."""
    return list(EXTENDED_ATTACKS)


def load_attack(name: str, n_flows: int, seed: SeedLike = None):
    """Flows for the named attack (alias of ``generate_attack_flows``)."""
    return generate_attack_flows(name, n_flows, seed)


def load_benign(n_flows: int, seed: SeedLike = None):
    """Benign flows (alias of ``generate_benign_flows``)."""
    return generate_benign_flows(n_flows, seed)
