"""One shard of the cluster: a pipeline plus its control-plane verbs.

A :class:`ShardWorker` owns one :class:`~repro.switch.pipeline.SwitchPipeline`
(with controller) and exposes exactly the operations the coordinator
drives, each usable both in-process and behind a queue in a worker
process:

* :meth:`replay_chunk` — serve one routed chunk slice through the live
  tables and return the per-packet verdicts plus this chunk's counter
  deltas (the shard-local equivalent of one
  :class:`~repro.runtime.stream.StreamDriver` iteration, including the
  chunk-boundary fault hook);
* :meth:`stage` / :meth:`commit` / :meth:`abort` — the shard-side half
  of the cluster's two-phase table swap, reusing
  ``stage_tables`` / ``hot_swap`` / ``reject_staged`` and the PR 4
  retry-with-backoff install path;
* :meth:`snapshot` — the shard's full serialised state for cluster
  checkpoints.

Workers deliberately publish **nothing** to the telemetry registry:
replays run under a scoped null registry and only return counter
deltas, so the coordinator is the single writer of cluster telemetry in
both executor modes (in a forked worker process a registry write would
land in a throwaway copy anyway).

For the multiprocess transport, packets cross the process boundary as a
struct-of-numpy-arrays wire format (:func:`pack_packets` /
:func:`unpack_packets`) — pickling six arrays is a memcpy, pickling
100k :class:`Packet` dataclasses is not.
"""

from __future__ import annotations

import operator
import time
from dataclasses import dataclass, field
from itertools import chain
from typing import Dict, List, Optional

import numpy as np

from repro.datasets.packet import FiveTuple, Packet
from repro.datasets.trace import Trace
from repro.faults.errors import TransientFaultError
from repro.faults.retry import retry_with_backoff
from repro.switch.batch import TraceColumns, replay_columns
from repro.switch.controller import Controller
from repro.switch.pipeline import PacketDecision, SwitchPipeline
from repro.switch.runner import replay_trace
from repro.telemetry import use_registry


# --------------------------------------------------------------------------
# Wire format
# --------------------------------------------------------------------------

_WIRE_FIELDS = operator.attrgetter(
    "five_tuple.src_ip",
    "five_tuple.dst_ip",
    "five_tuple.src_port",
    "five_tuple.dst_port",
    "five_tuple.protocol",
    "timestamp",
    "size",
    "ttl",
    "tcp_flags",
    "malicious",
)


def pack_packets(packets: List[Packet]) -> dict:
    """Struct-of-arrays form of *packets* — cheap to pickle, lossless.

    Every field is exactly representable in float64 (32-bit IPs, 16-bit
    ports, small ints, bools), so one ``fromiter`` pass captures the
    lot; integer columns are restored to int64 and the bool bit to bool
    on unpack, giving packets that compare equal to the originals.
    """
    n = len(packets)
    flat = np.fromiter(
        chain.from_iterable(map(_WIRE_FIELDS, packets)),
        dtype=np.float64,
        count=10 * n,
    ).reshape(n, 10)
    return {
        "tuples": flat[:, :5].astype(np.int64),
        "timestamps": flat[:, 5].copy(),
        "meta": flat[:, 6:9].astype(np.int64),  # size, ttl, tcp_flags
        "malicious": flat[:, 9].astype(bool),
    }


def unpack_packets(doc: dict) -> List[Packet]:
    """Rebuild the packet list from :func:`pack_packets` output."""
    tuples = doc["tuples"]
    timestamps = doc["timestamps"]
    meta = doc["meta"]
    malicious = doc["malicious"]
    return [
        Packet(
            five_tuple=FiveTuple(
                int(t[0]), int(t[1]), int(t[2]), int(t[3]), int(t[4])
            ),
            timestamp=float(timestamps[i]),
            size=int(meta[i, 0]),
            ttl=int(meta[i, 1]),
            tcp_flags=int(meta[i, 2]),
            malicious=bool(malicious[i]),
        )
        for i, t in enumerate(tuples)
    ]


# --------------------------------------------------------------------------
# Shard worker
# --------------------------------------------------------------------------


@dataclass
class ShardChunkOutcome:
    """One shard's share of one served chunk."""

    shard_id: int
    n_packets: int
    y_true: np.ndarray
    y_pred: np.ndarray
    #: This chunk's deltas of every pipeline + controller counter.
    counter_deltas: Dict[str, int]
    gauges: Dict[str, float] = field(default_factory=dict)
    #: Per-packet decisions in shard order (None when the worker was
    #: built with ``keep_decisions=False``, e.g. across a process
    #: boundary where shipping decision objects would dominate).
    decisions: Optional[List[PacketDecision]] = None


def clone_pipeline(pipeline: SwitchPipeline) -> SwitchPipeline:
    """A fresh pipeline serving *pipeline*'s live table generation.

    Table objects (rule sets, quantisers) are shared — they are
    read-only at serve time and each clone wraps them in its own lookup
    tables — while all mutable serving state (flow store, blacklist,
    counters, staged generations) starts empty.  This is how the
    coordinator turns one trained pipeline into ``n_shards`` identical
    shards; under the multiprocess executor each worker process gets its
    own deep copy via pickling anyway.
    """
    live = pipeline._live_tables()
    clone = SwitchPipeline(
        fl_rules=live.fl_rules,
        fl_quantizer=live.fl_quantizer,
        pl_rules=live.pl_rules,
        pl_quantizer=live.pl_quantizer,
        config=pipeline.config,
    )
    if pipeline.controller is not None:
        Controller(clone, install_blacklist=pipeline.controller.install_blacklist)
        engine = getattr(pipeline.controller, "policy", None)
        if engine is not None:
            # Each shard runs its own engine over its own flow
            # partition: same policy, fresh ladder/quota/guard state.
            engine.clone_fresh().attach(clone)
    return clone


class ShardWorker:
    """One shard's pipeline plus the verbs the coordinator drives."""

    def __init__(
        self,
        shard_id: int,
        pipeline: SwitchPipeline,
        mode: str = "batch",
        faults=None,
        keep_decisions: bool = True,
    ) -> None:
        self.shard_id = shard_id
        self.pipeline = pipeline
        self.mode = mode
        self.faults = faults
        self.keep_decisions = keep_decisions
        self.chunks_processed = 0
        self.packets_processed = 0

    # -- serving ------------------------------------------------------------

    def start_serving(self) -> None:
        """Serve-start hook: wire the fault plan's digest channel in."""
        if self.faults is not None:
            self.faults.install(self.pipeline)

    def _counters(self) -> Dict[str, int]:
        counters = dict(self.pipeline.telemetry_counters())
        if self.pipeline.controller is not None:
            counters.update(self.pipeline.controller.telemetry_counters())
        return counters

    def replay_chunk(self, packets, chunk_index: int) -> ShardChunkOutcome:
        """Serve this shard's slice of global chunk *chunk_index*.

        *packets* is a packet list or a :func:`pack_packets` document
        (the multiprocess wire form).  An empty slice still advances the
        chunk-boundary fault hooks, so index-scheduled injectors stay
        aligned with the global chunk clock on every shard.
        """
        if isinstance(packets, dict):
            packets = unpack_packets(packets)
        before = self._counters()
        # The worker never publishes: the coordinator owns telemetry.
        with use_registry(None):
            replay = replay_trace(Trace(packets), self.pipeline, mode=self.mode)
            self._policy_tick(packets[-1].timestamp if packets else None)
        after = self._counters()
        deltas = {k: after[k] - before.get(k, 0) for k in after}
        if self.faults is not None:
            self.faults.on_chunk_end(self.pipeline, chunk_index)
        self.chunks_processed += 1
        self.packets_processed += len(packets)
        return ShardChunkOutcome(
            shard_id=self.shard_id,
            n_packets=len(packets),
            y_true=replay.y_true,
            y_pred=replay.y_pred,
            counter_deltas=deltas,
            gauges=self.pipeline.telemetry_gauges(),
            decisions=replay.decisions if self.keep_decisions else None,
        )

    def replay_chunk_columns(
        self, cols: TraceColumns, chunk_index: int
    ) -> ShardChunkOutcome:
        """Serve a columnar slice of global chunk *chunk_index* — the
        shared-memory transport's twin of :meth:`replay_chunk`.

        In batch mode the slice goes straight through
        :func:`~repro.switch.batch.replay_columns`, so no
        :class:`Packet` objects exist on the hot path (only the rare
        digest-emitting blue-path packets materialise lazily).  In
        scalar mode the columns are rehydrated and replayed exactly as
        a packet list would be — same verdicts, same counters, either
        way.
        """
        before = self._counters()
        decisions: Optional[List[PacketDecision]] = None
        # The worker never publishes: the coordinator owns telemetry.
        with use_registry(None):
            if self.mode == "batch" and type(self.pipeline).process is (
                SwitchPipeline.process
            ):
                outcome = replay_columns(cols, self.pipeline)
                y_true, y_pred = outcome.y_true, outcome.y_pred
            else:
                replay = replay_trace(
                    Trace(cols.to_packets()), self.pipeline, mode=self.mode
                )
                y_true, y_pred = replay.y_true, replay.y_pred
                if self.keep_decisions:
                    decisions = replay.decisions
            self._policy_tick(float(cols.timestamps[-1]) if len(cols) else None)
        after = self._counters()
        deltas = {k: after[k] - before.get(k, 0) for k in after}
        if self.faults is not None:
            self.faults.on_chunk_end(self.pipeline, chunk_index)
        self.chunks_processed += 1
        self.packets_processed += len(cols)
        return ShardChunkOutcome(
            shard_id=self.shard_id,
            n_packets=len(cols),
            y_true=y_true,
            y_pred=y_pred,
            counter_deltas=deltas,
            gauges=self.pipeline.telemetry_gauges(),
            decisions=decisions,
        )

    def _policy_tick(self, now: Optional[float]) -> None:
        """Mitigation TTL tick at this shard's chunk boundary.

        Runs inside the replay's null-registry scope and *before* the
        ``after`` counter snapshot, so expiry counter increments ride
        the chunk's counter deltas back to the coordinator (the single
        writer) instead of vanishing into a worker-process registry.
        """
        engine = getattr(self.pipeline.controller, "policy", None)
        if engine is not None:
            engine.tick(now)

    # -- mitigation verbs ----------------------------------------------------

    def unblock(self, flow: str) -> dict:
        """Ops verb: pardon *flow* (a ``repro.mitigation.flow_key``
        string) on this shard's policy engine."""
        engine = getattr(self.pipeline.controller, "policy", None)
        if engine is None:
            return {"shard_id": self.shard_id, "outcome": "skipped:no_policy"}
        from repro.mitigation import parse_flow_key

        try:
            five_tuple = parse_flow_key(flow or "")
        except ValueError:
            return {"shard_id": self.shard_id, "outcome": "rejected:bad_flow_key"}
        return {"shard_id": self.shard_id, "outcome": engine.unblock(five_tuple)}

    def mitigation_status(self) -> Optional[dict]:
        """This shard's :meth:`~repro.mitigation.PolicyEngine.status`,
        or ``None`` when no engine is attached."""
        engine = getattr(self.pipeline.controller, "policy", None)
        return None if engine is None else engine.status()

    def finish(self) -> Dict[str, int]:
        """End of stream: flush the fault channel, return fault counts."""
        if self.faults is not None:
            self.faults.finalize()
            return self.faults.counts()
        return {}

    # -- two-phase swap ------------------------------------------------------

    def stage(
        self,
        artifacts,
        retries: int = 2,
        base_delay: float = 0.02,
        deadline_s: Optional[float] = None,
    ) -> dict:
        """Phase 1: validate and stage a new generation on this shard.

        Runs the shard's install-fault hook plus ``stage_tables`` under
        the PR 4 retry budget.  Never raises: the outcome dict carries
        ``ok``, the attempt count, and the failure class (``validation``
        for deterministic rejections, ``transient`` for an exhausted
        retry budget) so the coordinator can decide the cluster-wide
        verdict.
        """
        attempts = 0

        def _stage() -> None:
            nonlocal attempts
            attempts += 1
            if self.faults is not None:
                self.faults.before_table_install()
            self.pipeline.stage_tables(
                artifacts.fl_rules,
                artifacts.fl_quantizer,
                pl_rules=artifacts.pl_rules,
                pl_quantizer=artifacts.pl_quantizer,
            )

        error = None
        try:
            retry_with_backoff(
                _stage, retries=retries, base_delay=base_delay, deadline_s=deadline_s
            )
        except ValueError:
            error = "validation"
        except TransientFaultError:
            error = "transient"
        return {
            "shard_id": self.shard_id,
            "ok": error is None,
            "attempts": attempts,
            "error": error,
        }

    def commit(self) -> dict:
        """Phase 2: flip the staged generation live.

        ``hot_swap`` re-validates before touching anything, so a failure
        here leaves this shard fully on the old generation with the
        candidate still staged; the coordinator then aborts cluster-wide.
        """
        start = time.perf_counter()
        try:
            self.pipeline.hot_swap()
        except (ValueError, RuntimeError):
            return {"shard_id": self.shard_id, "ok": False,
                    "duration_s": time.perf_counter() - start}
        return {"shard_id": self.shard_id, "ok": True,
                "duration_s": time.perf_counter() - start}

    def abort(self, swapped: bool = False) -> None:
        """Cluster-wide abort: undo this shard's part of the attempt.

        A shard that already committed rolls its tables back; one that
        only staged (or failed to stage) rejects the candidate.  Either
        way the shard ends on the pre-swap generation and records one
        rollback, so an aborted cluster swap counts exactly
        ``n_shards`` table rollbacks.
        """
        if swapped:
            self.pipeline.rollback()
        else:
            self.pipeline.reject_staged()

    def rollback(self) -> dict:
        """Ops verb: restore the generation the last committed swap
        displaced.  Shards flip in lockstep (two-phase commit), so either
        every shard can roll back or none can — the coordinator checks
        the per-shard ``ok`` flags all agree before mirroring telemetry.
        """
        if not self.pipeline.can_rollback:
            return {"shard_id": self.shard_id, "ok": False,
                    "error": "no_previous_generation"}
        self.pipeline.rollback()
        return {"shard_id": self.shard_id, "ok": True, "error": None}

    # -- state --------------------------------------------------------------

    def counters(self) -> Dict[str, int]:
        return self._counters()

    def snapshot(self) -> dict:
        """Self-contained serialised state for cluster checkpoints."""
        from repro.runtime.checkpoint import _pipeline_to_obj

        doc = {
            "shard_id": self.shard_id,
            "pipeline": _pipeline_to_obj(self.pipeline),
            "chunks_processed": self.chunks_processed,
            "packets_processed": self.packets_processed,
            "faults": None,
            "faults_seed": None,
            "faults_spec": None,
        }
        if self.faults is not None:
            doc["faults"] = self.faults.state_dict()
            doc["faults_seed"] = self.faults.seed
            doc["faults_spec"] = self.faults.spec
        return doc
