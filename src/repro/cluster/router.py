"""Flow-hash packet partitioning across shards.

A cluster run must be behaviourally indistinguishable from one big
switch, and the whole per-flow state machine (streaming accumulators,
flow-label registers, timeouts, blacklist verdicts) lives keyed by the
canonical 5-tuple.  The router therefore partitions by the *same*
direction-independent FNV-1a bi-hash the data plane uses for its
register indexing (:func:`repro.switch.hashing.bi_hash`), under a
dedicated salt so shard placement is decorrelated from slot placement
inside each shard's double hash table:

* every packet of a flow — both directions — lands on the same shard,
  so each shard observes complete flows and per-flow semantics are
  preserved exactly;
* the assignment is a pure function of the 5-tuple, so it is stable
  under packet reordering, replay restarts, and resume-from-checkpoint.

The vectorised path reuses :func:`repro.switch.batch.bi_hash_batch`
(bit-identical to the scalar hash, locked by the batch differential
suite) so routing a 100k-packet trace costs a few numpy passes, not a
Python loop.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from itertools import chain
from typing import List, Sequence

import numpy as np

from repro.datasets.packet import FiveTuple, Packet
from repro.datasets.trace import Trace
from repro.switch.batch import bi_hash_batch
from repro.switch.hashing import bi_hash

#: Router hash salt — distinct from the flow store's table salts (1, 2)
#: so shard assignment and in-shard slot placement are independent hash
#: streams of the same tuple.
ROUTER_SALT = 0xC1D

#: C-level 5-tuple field extractor for the vectorised path.
_TUPLE_FIELDS = operator.attrgetter(
    "five_tuple.src_ip",
    "five_tuple.dst_ip",
    "five_tuple.src_port",
    "five_tuple.dst_port",
    "five_tuple.protocol",
)


@dataclass(frozen=True)
class ShardPartition:
    """One routed batch: per-shard packet lists plus scatter indices.

    ``indices[k][i]`` is the position in the *original* packet sequence
    of shard *k*'s *i*-th packet, so per-shard results (decisions,
    verdict arrays) can be scattered back into global arrival order.
    Within each shard the original relative order — and therefore the
    timestamp order — is preserved.
    """

    shards: List[List[Packet]]
    indices: List[np.ndarray]
    assignments: np.ndarray  #: packet → shard id, in original order

    @property
    def n_packets(self) -> int:
        return int(self.assignments.size)

    def shard_sizes(self) -> List[int]:
        return [len(s) for s in self.shards]


class FlowShardRouter:
    """Deterministic canonical-5-tuple hash partitioner.

    ``shard_of`` is the scalar reference; ``shard_indices`` is the
    vectorised equivalent over a packet sequence (bit-identical, via the
    batch engine's uint64 FNV-1a lanes).
    """

    def __init__(self, n_shards: int, salt: int = ROUTER_SALT) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self.n_shards = n_shards
        self.salt = salt
        #: Shards taken out of rotation by an ops ``drain`` verb.  Their
        #: flows spill deterministically onto the remaining shards (a
        #: second ``hash % n_active`` draw), so the assignment stays a
        #: pure function of ``(tuple, drained-set)`` — stable across
        #: chunks, restarts, and both transports.  Draining moves flows
        #: onto shards with no prior state for them; that is inherent to
        #: drain, not a routing defect.
        self.drained: set = set()

    def drain(self, shard: int) -> None:
        """Take *shard* out of rotation (future chunks re-route its flows)."""
        if not 0 <= shard < self.n_shards:
            raise ValueError(f"shard must be in [0, {self.n_shards}), got {shard}")
        if len(self.drained | {shard}) >= self.n_shards:
            raise ValueError(
                f"cannot drain shard {shard}: it is the last active shard "
                "(the router must keep >= 1 shard in rotation); undrain "
                "another shard first"
            )
        self.drained.add(shard)

    def undrain(self, shard: int) -> None:
        """Return *shard* to rotation."""
        self.drained.discard(shard)

    def _active_shards(self) -> List[int]:
        return [k for k in range(self.n_shards) if k not in self.drained]

    def shard_of(self, five_tuple: FiveTuple) -> int:
        """Shard owning *five_tuple* — direction independent by
        construction (``bi_hash`` canonicalises internally)."""
        h = bi_hash(five_tuple, self.salt)
        shard = int(h % self.n_shards)
        if shard in self.drained:
            active = self._active_shards()
            shard = active[int(h % len(active))]
        return shard

    def shard_indices(self, packets: Sequence[Packet]) -> np.ndarray:
        """Vectorised shard id per packet."""
        n = len(packets)
        if n == 0:
            return np.empty(0, dtype=np.int64)
        if self.n_shards == 1:
            return np.zeros(n, dtype=np.int64)
        flat = np.fromiter(
            chain.from_iterable(map(_TUPLE_FIELDS, packets)),
            dtype=np.int64,
            count=5 * n,
        ).reshape(n, 5)
        return self.shard_indices_fields(flat)

    def shard_indices_fields(self, flat: np.ndarray) -> np.ndarray:
        """Vectorised shard id per row of an ``(n, 5)`` raw 5-tuple array
        (packet direction, as :attr:`TraceColumns.tuples` stores it —
        canonicalisation happens here, exactly as in the scalar hash).

        This is the columnar twin of :meth:`shard_indices`: the shm
        serve path routes straight off the trace's tuple column without
        ever touching a :class:`Packet`.
        """
        n = int(flat.shape[0])
        if n == 0:
            return np.empty(0, dtype=np.int64)
        if self.n_shards == 1:
            return np.zeros(n, dtype=np.int64)
        src_ip, dst_ip = flat[:, 0], flat[:, 1]
        src_port, dst_port = flat[:, 2], flat[:, 3]
        # FiveTuple.canonical(): keep the direction whose (src_ip, src_port)
        # sorts lexicographically smaller (same rule as TraceArrays).
        swap = (src_ip > dst_ip) | ((src_ip == dst_ip) & (src_port > dst_port))
        fields = np.empty_like(flat)
        fields[:, 0] = np.where(swap, dst_ip, src_ip)
        fields[:, 1] = np.where(swap, src_ip, dst_ip)
        fields[:, 2] = np.where(swap, dst_port, src_port)
        fields[:, 3] = np.where(swap, src_port, dst_port)
        fields[:, 4] = flat[:, 4]
        h = bi_hash_batch(fields, self.salt)
        assignments = (h % np.uint64(self.n_shards)).astype(np.int64)
        if self.drained:
            active = np.asarray(self._active_shards(), dtype=np.int64)
            mask = np.isin(assignments, np.fromiter(self.drained, dtype=np.int64))
            if mask.any():
                assignments[mask] = active[
                    (h[mask] % np.uint64(active.size)).astype(np.int64)
                ]
        return assignments

    def partition(self, packets) -> ShardPartition:
        """Split *packets* (a :class:`Trace` or packet sequence) into one
        ordered sub-sequence per shard."""
        if isinstance(packets, Trace):
            packets = packets.packets
        assignments = self.shard_indices(packets)
        shards: List[List[Packet]] = []
        indices: List[np.ndarray] = []
        for k in range(self.n_shards):
            idx = np.flatnonzero(assignments == k)
            indices.append(idx)
            shards.append([packets[i] for i in idx])
        return ShardPartition(shards=shards, indices=indices, assignments=assignments)
