"""Cluster coordinator: sharded serving with a cluster-wide control loop.

:class:`ClusterService` scales the PR 3 serving loop horizontally: a
:class:`~repro.cluster.router.FlowShardRouter` splits each global chunk
by canonical flow hash, every shard's
:class:`~repro.cluster.worker.ShardWorker` replays its slice through
its own :class:`~repro.switch.pipeline.SwitchPipeline`, and the
coordinator merges verdicts back into global arrival order, feeds the
*merged* stream to one cluster-level drift monitor + retrainer, and
publishes all telemetry itself (aggregated totals plus shard-tagged
``cluster.shard.<k>.*`` counters).

Table updates use a **two-phase protocol** so no packet is ever served
by a mixed-generation cluster:

1. *Stage* the new generation on every shard (per-shard
   ``retry_with_backoff`` around ``stage_tables``, same budget as the
   single-pipeline service).  If **any** shard fails — validation or an
   exhausted transient-retry budget — the swap aborts everywhere:
   every shard rejects the candidate and keeps serving the old tables.
2. *Commit* (``hot_swap``) on every shard only once all stages
   succeeded.  Should a commit still fail (install-time re-validation),
   shards that already flipped are rolled back and the rest reject, so
   the cluster uniformly lands back on the old generation.

Faults and checkpoints are threaded **per shard**: each worker carries
its own :class:`~repro.faults.FaultPlan` (independent seeds fanned out
from the cluster seed, so one shard's schedule never perturbs
another's) and cluster checkpoints embed one self-contained snapshot
per shard (see :mod:`repro.cluster.checkpoint`).

With ``n_shards=1`` — or any shard count under the in-process executor,
absent cross-flow hash-table couplings — the cluster is bit-identical
to single-pipeline replay; the differential suite in
``tests/cluster/test_cluster_differential.py`` locks that equivalence.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.cluster.executor import EXECUTOR_KINDS, make_executor
from repro.cluster.router import ROUTER_SALT, FlowShardRouter, ShardPartition
from repro.cluster.worker import (
    ShardChunkOutcome,
    ShardWorker,
    clone_pipeline,
    pack_packets,
)
from repro.datasets.trace import Trace
from repro.faults.errors import RetrainFaultError
from repro.faults.plan import INJECTOR_TYPES, FaultPlan, parse_fault_spec
from repro.runtime.control import OpsControlMixin
from repro.runtime.drift import DriftMonitor
from repro.runtime.retrain import Retrainer
from repro.runtime.service import RuntimeConfig
from repro.runtime.stream import (
    ChunkStats,
    PacketSource,
    _path_fractions,
    as_chunk_iter,
    chunk_ranges,
)
from repro.switch.batch import TraceColumns
from repro.switch.pipeline import PacketDecision, SwitchPipeline
from repro.switch.runner import ReplayResult
from repro.telemetry import get_registry, span
from repro.utils.rng import SeedLike, as_rng, spawn_seeds


def shard_fault_plans(spec: str, n_shards: int) -> List[FaultPlan]:
    """One independently-seeded :class:`FaultPlan` per shard from *spec*.

    All plans share the spec's injector clauses; their generator seeds
    fan out from the spec seed, so per-shard fault schedules are
    decorrelated yet the whole cluster's fault behaviour replays from
    one spec string (fault isolation: shard k's schedule is a pure
    function of ``(spec, k)``).
    """
    seed, clauses = parse_fault_spec(spec)
    shard_seeds = spawn_seeds(as_rng(0 if seed is None else seed), n_shards)
    return [
        FaultPlan(
            [INJECTOR_TYPES[name](**params) for name, params in clauses],
            seed=s,
            spec=spec,
        )
        for s in shard_seeds
    ]


@dataclass(frozen=True)
class RowPartition:
    """A routed chunk in row space — the shm transport's partition.

    Shape-compatible with :class:`~repro.cluster.router.ShardPartition`
    where the merge path looks (``indices``, ``n_packets``,
    ``shard_sizes``), but carries no packet lists: shard *k*'s slice is
    the contiguous arena rows ``[offsets[k], offsets[k] + lengths[k])``
    and ``indices[k]`` maps them back to chunk-local arrival order.
    """

    indices: List[np.ndarray]
    offsets: np.ndarray  #: per-shard start row in the shared arena
    lengths: np.ndarray  #: per-shard row count
    n_packets: int

    def shard_sizes(self) -> List[int]:
        return [int(n) for n in self.lengths]


@dataclass(frozen=True)
class ClusterSwapEvent:
    """One cluster-wide two-phase table update attempt."""

    chunk_index: int
    reason: str  # "drift", "cadence", or "manual"
    #: Wall clock of the full barrier: stage-everywhere + commit (or abort).
    duration_s: float
    rolled_back: bool
    #: Worst-case per-shard install attempts (>1 ⇒ transient flakes retried).
    attempts: int = 1
    #: Install attempts per shard, indexed by shard id.
    shard_attempts: List[int] = field(default_factory=list)
    #: Shards whose stage/commit failed and triggered the cluster abort.
    failed_shards: List[int] = field(default_factory=list)


@dataclass
class ClusterReplayResult:
    """Merged outcome of one cluster replay, in global arrival order."""

    y_true: np.ndarray
    y_pred: np.ndarray
    #: Global-order decisions; empty when workers ran with
    #: ``keep_decisions=False`` (multiprocess executor).
    decisions: List[PacketDecision] = field(default_factory=list)
    #: Summed pipeline+controller counter deltas across shards.
    counters: Dict[str, int] = field(default_factory=dict)
    shard_sizes: List[int] = field(default_factory=list)

    @property
    def n_packets(self) -> int:
        return int(self.y_true.size)


@dataclass
class ClusterServeReport:
    """Outcome of one :meth:`ClusterService.serve` call.

    Field-compatible with :class:`~repro.runtime.service.ServeReport`
    where the meaning coincides (the CLI summary renders either), plus
    the cluster-only sections: per-shard packet counts and per-shard
    fault counts.
    """

    n_shards: int = 1
    n_chunks: int = 0
    n_packets: int = 0
    drift_signals: int = 0
    retrains: int = 0
    retrain_failures: int = 0
    #: Coordinator-plan + all shard-plan ``faults.*`` totals, summed.
    fault_counts: Dict[str, int] = field(default_factory=dict)
    #: Per-shard ``faults.*`` totals, indexed by shard id.
    shard_fault_counts: List[Dict[str, int]] = field(default_factory=list)
    #: Packets served by each shard, indexed by shard id.
    shard_packets: List[int] = field(default_factory=list)
    swap_events: List[ClusterSwapEvent] = field(default_factory=list)
    chunk_stats: List[ChunkStats] = field(default_factory=list)
    chunk_offsets: List[int] = field(default_factory=list)
    #: Operator control tickets applied during the run (ops surface).
    control_events: List[Dict] = field(default_factory=list)
    decisions: List[PacketDecision] = field(default_factory=list)
    y_true: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=int))
    y_pred: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=int))

    @property
    def n_swaps(self) -> int:
        return sum(1 for e in self.swap_events if not e.rolled_back)

    @property
    def n_rollbacks(self) -> int:
        return sum(1 for e in self.swap_events if e.rolled_back)

    def packet_offset_of_chunk(self, chunk_index: int) -> int:
        return self.chunk_offsets[chunk_index]


class ClusterService(OpsControlMixin):
    """N sharded pipelines behaving as one big switch.

    Parameters
    ----------
    pipeline:
        Template pipeline; every shard serves a fresh clone of its live
        table generation (state starts empty per shard — the router
        guarantees each flow's packets meet only its own shard's state).
    n_shards / executor:
        Cluster width and where workers run (``"inprocess"`` for
        deterministic tests, ``"multiprocess"`` for real parallelism).
    retrainer / monitor / config / seed:
        Exactly the single-service control-plane knobs; drift detection
        and retraining run once, cluster-wide, over the merged stream.
    faults_spec / shard_faults:
        Per-shard fault plans — either derived from a spec string via
        :func:`shard_fault_plans`, or given explicitly (one per shard;
        ``None`` entries mean fault-free shards).  The coordinator keeps
        its own plan for the global retrain/artifact hooks.
    workers:
        Pre-built workers (checkpoint restore path); overrides
        ``pipeline``-based construction.
    """

    def __init__(
        self,
        pipeline: Optional[SwitchPipeline] = None,
        n_shards: int = 2,
        retrainer: Optional[Retrainer] = None,
        monitor: Optional[DriftMonitor] = None,
        config: Optional[RuntimeConfig] = None,
        executor: str = "inprocess",
        seed: SeedLike = None,
        faults_spec: Optional[str] = None,
        shard_faults: Optional[List[Optional[FaultPlan]]] = None,
        coordinator_faults: Optional[FaultPlan] = None,
        workers: Optional[List[ShardWorker]] = None,
        router_salt: int = ROUTER_SALT,
        shm_name: Optional[str] = None,
    ) -> None:
        if executor not in EXECUTOR_KINDS:
            raise ValueError(
                f"executor must be one of {EXECUTOR_KINDS}, got {executor!r}"
            )
        self.config = config or RuntimeConfig()
        self.executor_kind = executor
        self.faults_spec = faults_spec
        self._init_control_plane()
        #: Pinned shared-segment name for the ``shm`` executor (resume
        #: re-maps by this name); ``None`` → a fresh name per executor.
        self.shm_name = shm_name

        if coordinator_faults is None and faults_spec is not None:
            coordinator_faults = FaultPlan.from_spec(faults_spec)
        self.faults = coordinator_faults

        if workers is not None:
            self.workers = list(workers)
            n_shards = len(self.workers)
        else:
            if shard_faults is None and faults_spec is not None:
                shard_faults = shard_fault_plans(faults_spec, n_shards)
            if pipeline is None:
                raise ValueError("either a template pipeline or workers required")
            if n_shards < 1:
                raise ValueError(f"n_shards must be >= 1, got {n_shards}")
            if shard_faults is not None and len(shard_faults) != n_shards:
                raise ValueError(
                    f"{len(shard_faults)} shard fault plans for {n_shards} shards"
                )
            # Per-packet decision objects only survive the in-process
            # executor; shipping them back over a pipe would dominate.
            keep = executor == "inprocess"
            self.workers = [
                ShardWorker(
                    k,
                    clone_pipeline(pipeline),
                    mode=self.config.mode,
                    faults=shard_faults[k] if shard_faults is not None else None,
                    keep_decisions=keep,
                )
                for k in range(n_shards)
            ]
        self.n_shards = n_shards
        self.router = FlowShardRouter(n_shards, salt=router_salt)

        template = pipeline if pipeline is not None else self.workers[0].pipeline
        self.retrainer = retrainer if retrainer is not None else Retrainer(
            pkt_count_threshold=template.config.pkt_count_threshold,
            timeout=template.config.timeout,
            use_pl_model=template.pl_table is not None,
            seed=seed,
        )
        if monitor is not None:
            self.monitor: Optional[DriftMonitor] = monitor
        elif self.config.drift_threshold > 0:
            self.monitor = DriftMonitor(
                window=self.config.drift_window,
                baseline_window=self.config.baseline_window,
                threshold=self.config.drift_threshold,
                min_packets=self.config.min_drift_packets,
                warmup_chunks=self.config.drift_warmup_chunks,
            )
        else:
            self.monitor = None

        self._executor = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ClusterService":
        """Bring the shard fleet up (forks worker processes under the
        multiprocess executor); idempotent."""
        if self._executor is None:
            self._executor = make_executor(
                self.executor_kind, self.workers, shm_name=self.shm_name
            )
        return self

    @property
    def shm_segment_name(self) -> Optional[str]:
        """Name of the live shared segment (``shm`` executor only) —
        recorded in cluster checkpoints so resume can re-map it."""
        if self.executor_kind != "shm":
            return None
        if self._executor is not None:
            return self._executor.segment_name
        return self.shm_name

    def close(self) -> None:
        if self._executor is not None:
            self._executor.close()
            self._executor = None

    def __enter__(self) -> "ClusterService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    def _ship(self, packets: List) -> object:
        """Per-shard packet payload in the executor's cheapest form."""
        if self.executor_kind == "multiprocess":
            return pack_packets(packets)
        return packets

    # -- merged replay -------------------------------------------------------

    def _merge_outcomes(
        self, partition, outcomes: List[ShardChunkOutcome]
    ) -> ClusterReplayResult:
        """Scatter per-shard results back into global arrival order.

        *partition* is a :class:`~repro.cluster.router.ShardPartition`
        or a :class:`RowPartition` — only ``indices`` / ``n_packets`` /
        ``shard_sizes()`` are touched, which both provide."""
        n = partition.n_packets
        y_true = np.empty(n, dtype=int)
        y_pred = np.empty(n, dtype=int)
        counters: Dict[str, int] = {}
        decisions: List[Optional[PacketDecision]] = (
            [None] * n if all(o.decisions is not None for o in outcomes) else []
        )
        for k, out in enumerate(outcomes):
            idx = partition.indices[k]
            y_true[idx] = out.y_true
            y_pred[idx] = out.y_pred
            if decisions and out.decisions is not None:
                for i, d in zip(idx, out.decisions):
                    decisions[i] = d
            for name, delta in out.counter_deltas.items():
                counters[name] = counters.get(name, 0) + delta
        return ClusterReplayResult(
            y_true=y_true,
            y_pred=y_pred,
            decisions=decisions,
            counters=counters,
            shard_sizes=partition.shard_sizes(),
        )

    def _publish_chunk(
        self, merged: ClusterReplayResult, outcomes: List[ShardChunkOutcome]
    ) -> None:
        """Publish one routed chunk the way single-pipeline replay would.

        Aggregated counter deltas telescope to the same totals a single
        pipeline serving the same packets publishes (the differential
        invariant); shard-tagged copies land under ``cluster.shard.<k>.*``.
        """
        registry = get_registry()
        if not registry.enabled:
            return
        for name, delta in sorted(merged.counters.items()):
            if delta:
                registry.counter(name).inc(delta)
        registry.counter("replay.packets").inc(merged.n_packets)
        occupancy = 0.0
        fill = 0.0
        bl_size = 0.0
        mitigation: Dict[str, float] = {}
        for out in outcomes:
            k = out.shard_id
            for name, delta in out.counter_deltas.items():
                if delta:
                    registry.counter(f"cluster.shard.{k}.{name}").inc(delta)
            for name, value in out.gauges.items():
                registry.gauge(f"cluster.shard.{k}.{name}").set(value)
                # Mitigation levels are additive across shards (each
                # engine owns a disjoint flow partition) — except the
                # guard budget, where the tightest shard is the story.
                if name.startswith("mitigation."):
                    if name == "mitigation.guard_budget_remaining":
                        mitigation[name] = min(
                            mitigation.get(name, value), value
                        )
                    else:
                        mitigation[name] = mitigation.get(name, 0.0) + value
            occupancy += out.gauges.get("switch.store.occupancy", 0.0)
            fill += out.gauges.get("switch.store.fill_fraction", 0.0)
            bl_size += out.gauges.get("switch.blacklist.size", 0.0)
        registry.gauge("switch.store.occupancy").set(occupancy)
        registry.gauge("switch.store.fill_fraction").set(fill / len(outcomes))
        registry.gauge("switch.blacklist.size").set(bl_size)
        for name, value in mitigation.items():
            registry.gauge(name).set(value)

    # -- chunk iteration (both transports) -----------------------------------

    def _iter_routed_chunks(
        self,
        source: PacketSource,
        chunk_size: int,
        start_index: int,
        skip_packets: int = 0,
    ):
        """Packet-list transport: route each chunk, ship per-shard
        packet payloads, collect outcomes.  Yields
        ``(chunk, partition, outcomes)`` per global chunk.  *source* may
        be a materialised trace or a streaming packet source — routing
        consumes one chunk at a time either way, so streaming scenarios
        serve in O(chunk) memory."""
        for offset, chunk in enumerate(
            as_chunk_iter(source, chunk_size, skip_packets=skip_packets)
        ):
            index = start_index + offset
            partition = self.router.partition(chunk)
            for k in range(self.n_shards):
                self._executor.dispatch(
                    k, "replay_chunk", self._ship(partition.shards[k]), index
                )
            outcomes = [self._executor.collect(k) for k in range(self.n_shards)]
            yield chunk, partition, outcomes

    def _iter_shm_chunks(self, trace: Trace, ranges, start_index: int):
        """Shared-memory transport: write the whole trace into the
        arena **once**, then dispatch each chunk as per-shard
        ``(offset, length, chunk_id)`` descriptors.

        The arena holds the trace under a global permutation that
        stable-sorts each chunk's rows by shard assignment, so every
        shard's share of every chunk is one contiguous row range (a
        single descriptor) while within-shard arrival order — the order
        the packet-list transport's router preserves — is untouched.
        Yields the same ``(chunk, partition, outcomes)`` triples as
        :meth:`_iter_routed_chunks`.
        """
        ex = self._executor
        packets = trace.packets
        cols = TraceColumns.from_trace(trace)
        n = len(cols)
        assignments = self.router.shard_indices_fields(cols.tuples)
        perm = np.empty(n, dtype=np.int64)
        plans = []
        for start, stop in ranges:
            local = assignments[start:stop]
            order = np.argsort(local, kind="stable")
            perm[start:stop] = start + order
            lengths = np.bincount(local, minlength=self.n_shards).astype(np.int64)
            bounds = np.concatenate(([0], np.cumsum(lengths)))
            offsets = start + bounds[:-1]
            indices = [
                order[bounds[k] : bounds[k + 1]] for k in range(self.n_shards)
            ]
            plans.append(
                RowPartition(
                    indices=indices,
                    offsets=offsets,
                    lengths=lengths,
                    n_packets=stop - start,
                )
            )
        ex.ensure_arena(n)
        ex.shm.write_columns(cols.take(perm))
        row = 0
        for offset_i, partition in enumerate(plans):
            index = start_index + offset_i
            chunk = Trace(packets[row : row + partition.n_packets])
            row += partition.n_packets
            for k in range(self.n_shards):
                ex.dispatch_descriptor(
                    k, int(partition.offsets[k]), int(partition.lengths[k]), index
                )
            outcomes = [
                self._collect_shm_outcome(
                    k, int(partition.offsets[k]), int(partition.lengths[k])
                )
                for k in range(self.n_shards)
            ]
            yield chunk, partition, outcomes

    def _collect_shm_outcome(
        self, shard_id: int, offset: int, length: int
    ) -> ShardChunkOutcome:
        """Await one shard's completion and read its results in place:
        verdicts from the shared column at the descriptor's own rows,
        ground truth from the coordinator-side malicious column (never
        shipped), counters/gauges from the fixed-layout blocks.  Counter
        names outside the pre-fork layout (grown by a hot-swapped
        generation) arrive as the doorbell ack's spill and are merged
        back in — spill names are disjoint from the block's by
        construction."""
        ex = self._executor
        _, _, spill = ex.collect_completion(shard_id)
        deltas = ex.shm.read_counter_deltas(shard_id)
        deltas.update(spill)
        return ShardChunkOutcome(
            shard_id=shard_id,
            n_packets=length,
            y_true=ex.shm.read_truth(offset, length),
            y_pred=ex.shm.read_verdicts(offset, length),
            counter_deltas=deltas,
            gauges=ex.shm.read_gauges(shard_id),
            decisions=None,
        )

    def _iter_chunk_replays(
        self,
        source: PacketSource,
        chunk_size: int,
        start_index: int,
        skip_packets: int = 0,
    ):
        if self.executor_kind == "shm":
            # The shm transport writes the whole trace into the arena up
            # front — fundamentally a materialised-input design.  Refuse
            # streaming sources loudly rather than silently buffering an
            # unbounded stream into RAM.
            if not isinstance(source, Trace):
                raise ValueError(
                    "streaming sources are unsupported on the shm transport: "
                    "it writes the full trace into the shared arena up "
                    "front; use executor='inprocess' or "
                    "executor='multiprocess' for streaming sources, or "
                    "materialise() the scenario first"
                )
            trace = Trace(source.packets[skip_packets:]) if skip_packets else source
            return self._iter_shm_chunks(
                trace, chunk_ranges(len(trace.packets), chunk_size), start_index
            )
        return self._iter_routed_chunks(
            source, chunk_size, start_index, skip_packets=skip_packets
        )

    def replay(self, trace: Trace) -> ClusterReplayResult:
        """Route and replay *trace* across all shards, one shot.

        Returns merged global-order verdicts plus summed counter deltas
        — the cluster-side subject of the differential suite.
        """
        self.start()
        with span("cluster.replay", shards=self.n_shards, packets=len(trace.packets)):
            if self.executor_kind == "shm":
                # One chunk spanning the whole trace; an empty trace
                # still dispatches one empty descriptor per shard so
                # chunk-boundary hooks advance exactly as the packet
                # transport's empty-chunk dispatch does.
                replays = self._iter_shm_chunks(
                    trace, [(0, len(trace.packets))], start_index=0
                )
            else:
                partition = self.router.partition(trace)
                for k in range(self.n_shards):
                    self._executor.dispatch(
                        k, "replay_chunk", self._ship(partition.shards[k]), 0
                    )
                outcomes = [self._executor.collect(k) for k in range(self.n_shards)]
                replays = iter([(trace, partition, outcomes)])
            _, partition, outcomes = next(replays)
        merged = self._merge_outcomes(partition, outcomes)
        self._publish_chunk(merged, outcomes)
        return merged

    # -- two-phase swap ------------------------------------------------------

    def swap(
        self,
        artifacts,
        chunk_index: int = -1,
        reason: str = "manual",
    ) -> ClusterSwapEvent:
        """Install *artifacts* cluster-wide via the two-phase protocol.

        Either every shard ends on the new generation or every shard
        ends on the old one — never a mix.  Returns the barrier event;
        telemetry mirrors the per-shard swap/rollback counters (swaps
        happen between replays, so per-chunk counter deltas never
        observe them).
        """
        self.start()
        cfg = self.config
        registry = get_registry()
        start = time.perf_counter()

        staged = self._executor.broadcast(
            "stage",
            artifacts,
            retries=cfg.stage_retries,
            base_delay=cfg.stage_backoff_s,
            deadline_s=cfg.stage_deadline_s,
        )
        failed = [r for r in staged if not r["ok"]]
        transient_abort = any(r["error"] == "transient" for r in failed)
        rolled_back = False
        if failed:
            # Phase 1 failed somewhere: abort everywhere.  Shards that
            # staged fine reject their candidate; the failing shard's
            # candidate was already cleared by stage_tables — its abort
            # just records the rollback.  No shard ever flipped.
            self._executor.broadcast("abort", swapped=False)
            rolled_back = True
        else:
            committed = self._executor.broadcast("commit")
            if any(not r["ok"] for r in committed):
                # Phase 2 failed somewhere: shards that flipped roll
                # back, the rest reject — uniform old generation.
                self._executor.broadcast(
                    "abort",
                    per_shard_args=[(bool(r["ok"]),) for r in committed],
                )
                failed = [r for r in committed if not r["ok"]]
                rolled_back = True
        duration = time.perf_counter() - start

        shard_attempts = [r["attempts"] for r in staged]
        event = ClusterSwapEvent(
            chunk_index=chunk_index,
            reason=reason,
            duration_s=duration,
            rolled_back=rolled_back,
            attempts=max(shard_attempts),
            shard_attempts=shard_attempts,
            failed_shards=sorted(r["shard_id"] for r in failed),
        )

        if registry.enabled:
            retries = sum(a - 1 for a in shard_attempts)
            if retries:
                registry.counter("runtime.stage_retries").inc(retries)
            registry.histogram("runtime.swap_pause_s").observe(duration)
            registry.histogram("cluster.swap_barrier_s").observe(duration)
            if rolled_back:
                registry.counter("runtime.rollbacks").inc()
                registry.counter("switch.table.rollbacks").inc(self.n_shards)
                for k in range(self.n_shards):
                    registry.counter(f"cluster.shard.{k}.switch.table.rollbacks").inc()
                if transient_abort:
                    registry.counter("degraded.swap_aborted").inc()
            else:
                registry.counter("runtime.swaps").inc()
                registry.counter("switch.table.swaps").inc(self.n_shards)
                for k in range(self.n_shards):
                    registry.counter(f"cluster.shard.{k}.switch.table.swaps").inc()
            registry.event(
                "cluster.swap",
                chunk=chunk_index,
                reason=reason,
                rolled_back=rolled_back,
                shards=self.n_shards,
                failed_shards=event.failed_shards,
                duration_s=round(duration, 6),
            )
        if not rolled_back and self.monitor is not None:
            self.monitor.reset()
        return event

    def _retrain_and_swap(self, chunk_index, reason, report) -> None:
        registry = get_registry()
        try:
            if self.faults is not None:
                self.faults.before_retrain()
            with span("retrain", reason=reason, chunk=chunk_index):
                artifacts = self.retrainer.retrain()
        except RetrainFaultError:
            report.retrain_failures += 1
            if registry.enabled:
                registry.counter("degraded.retrain_skipped").inc()
            return
        report.retrains += 1
        if registry.enabled:
            registry.counter("runtime.retrains").inc()
        if self.faults is not None:
            artifacts = self.faults.corrupt_artifacts(artifacts)
        report.swap_events.append(self.swap(artifacts, chunk_index, reason))

    # -- operator control (see repro.runtime.control / repro.ops) ------------

    def _apply_control(self, ticket: Dict, chunk_index: int, report) -> str:
        """Route one queued ops verb through the cluster control plane.

        Runs on the serving thread between chunks — the only thread that
        may touch the executor — so verbs reuse the exact machinery the
        drift loop drives (two-phase swap, worker rollback, router).
        """
        verb = ticket["verb"]
        registry = get_registry()
        if verb == "retrain":
            if not self._swap_allowed(report):
                return "skipped:max_swaps"
            if len(self.retrainer) < self.config.min_retrain_flows:
                return "skipped:reservoir_too_small"
            before = len(report.swap_events)
            self._retrain_and_swap(chunk_index, "manual", report)
            if len(report.swap_events) == before:
                return "skipped:retrain_failed"
            return (
                "rolled_back" if report.swap_events[-1].rolled_back else "swapped"
            )
        if verb == "rollback":
            self.start()
            results = self._executor.broadcast("rollback")
            if any(not r["ok"] for r in results):
                # Shards flip in lockstep, so a shard without a previous
                # generation means none have one: nothing to undo.
                return "skipped:no_previous_generation"
            if registry.enabled:
                registry.counter("ops.rollbacks").inc()
                registry.counter("switch.table.rollbacks").inc(self.n_shards)
                for k in range(self.n_shards):
                    registry.counter(f"cluster.shard.{k}.switch.table.rollbacks").inc()
            if self.monitor is not None:
                self.monitor.reset()
            return "rolled_back"
        if verb == "drain":
            shard = ticket.get("shard")
            if shard is None:
                return "skipped:no_shard_given"
            if self.executor_kind == "shm":
                # The shm transport routes the whole trace up front, so a
                # mid-serve drain could not take effect; refuse loudly
                # rather than pretend — and name the way out.
                return (
                    "unsupported:drain_on_shm_transport "
                    "(the arena is routed up front; use "
                    "executor='inprocess' or 'multiprocess' to drain "
                    "the last shard mid-serve)"
                )
            try:
                self.router.drain(int(shard))
            except ValueError as err:
                return f"skipped:{err}"
            if registry.enabled:
                registry.counter("ops.drains").inc()
                registry.gauge("cluster.drained_shards").set(
                    float(len(self.router.drained))
                )
            return "drained"
        if verb == "unblock":
            flow = ticket.get("flow")
            from repro.mitigation import parse_flow_key

            try:
                five_tuple = parse_flow_key(flow or "")
            except ValueError:
                return "rejected:bad_flow_key"
            # The flow's ladder state lives on exactly one shard — the
            # one the router assigns it to.
            self.start()
            shard = self.router.shard_of(five_tuple)
            result = self._executor.call(shard, "unblock", flow)
            return result["outcome"]
        return f"unsupported:{verb}"

    def mitigation_status(self) -> Optional[Dict]:
        """Cluster mitigation view: per-shard engine status plus summed
        totals; ``None`` when no shard runs a policy engine.

        While serving, the executor belongs to the serving thread, so
        an HTTP-thread poll gets the coordinator-side summary (policy
        plus the mitigation gauges published at the last chunk) instead
        of querying shards.
        """
        engine = (
            getattr(self.workers[0].pipeline.controller, "policy", None)
            if self.workers and self.workers[0].pipeline.controller is not None
            else None
        )
        if engine is None:
            return None
        if self._serving:
            registry = get_registry()
            gauges = registry.gauges_dict() if registry.enabled else {}
            return {
                "kind": "cluster",
                "live": True,
                "policy": engine.policy.to_spec(),
                "gauges": {
                    k: v for k, v in gauges.items() if k.startswith("mitigation.")
                },
            }
        self.start()
        shard_docs = self._executor.broadcast("mitigation_status")
        if all(doc is None for doc in shard_docs):
            return None
        totals = {
            "active_blocks": 0,
            "active_rate_limits": 0,
            "attack_leaked_packets": 0,
            "benign_dropped_packets": 0,
            "attack_dropped_packets": 0,
        }
        for doc in shard_docs:
            if doc is None:
                continue
            totals["active_blocks"] += doc["active"]["drop"]
            totals["active_rate_limits"] += doc["active"]["rate_limit"]
            for key in (
                "attack_leaked_packets",
                "benign_dropped_packets",
                "attack_dropped_packets",
            ):
                totals[key] += doc["meter"][key]
        return {
            "kind": "cluster",
            "totals": totals,
            "shards": shard_docs,
        }

    def _ops_extra(self) -> Dict:
        report = self._live_report
        # Coordinator-side template only — ops_status must never touch
        # the executor (HTTP-thread reads cannot perturb the run).
        engine = (
            getattr(self.workers[0].pipeline.controller, "policy", None)
            if self.workers and self.workers[0].pipeline.controller is not None
            else None
        )
        return {
            "kind": "cluster",
            "n_shards": self.n_shards,
            "executor": self.executor_kind,
            "mitigation": (
                None if engine is None else {"policy": engine.policy.name}
            ),
            "drained_shards": sorted(self.router.drained),
            "shard_packets": (
                list(report.shard_packets) if report is not None else []
            ),
            "reservoir_flows": len(self.retrainer),
            "drift_score": (
                self.monitor.last_score if self.monitor is not None else None
            ),
        }

    # -- serving -------------------------------------------------------------

    def _swap_allowed(self, report: ClusterServeReport) -> bool:
        cap = self.config.max_swaps
        return cap is None or report.n_swaps < cap

    def serve(
        self,
        trace: PacketSource,
        checkpoint=None,
        resume_report: Optional[ClusterServeReport] = None,
    ) -> ClusterServeReport:
        """Stream *trace* through the cluster with the full control loop.

        The global chunk clock, drift/cadence gating, and checkpoint
        cadence all mirror
        :meth:`~repro.runtime.service.OnlineDetectionService.serve`; the
        differences are that every chunk is routed across shards and
        table updates go through the two-phase barrier.  The packet-list
        transports accept streaming sources (scenario streams) and serve
        them in O(chunk) memory; the shm transport needs a materialised
        :class:`Trace` and raises ``ValueError`` otherwise.
        """
        cfg = self.config
        report = resume_report if resume_report is not None else ClusterServeReport(
            n_shards=self.n_shards
        )
        if not report.shard_packets:
            report.shard_packets = [0] * self.n_shards
        skip_packets = report.n_packets
        registry = get_registry()
        self.start()
        self._executor.broadcast("start_serving")
        self._serve_begin(report)
        try:
            self._serve_loop(trace, cfg, report, registry, checkpoint, skip_packets)
        finally:
            self._serve_end()

        shard_counts = self._executor.broadcast("finish")
        report.shard_fault_counts = [dict(c) for c in shard_counts]
        merged_counts: Dict[str, int] = {}
        if self.faults is not None:
            merged_counts.update(self.faults.counts())
        for counts in shard_counts:
            for name, fired in counts.items():
                merged_counts[name] = merged_counts.get(name, 0) + fired
        report.fault_counts = merged_counts
        if checkpoint is not None:
            checkpoint.save(self, report, complete=True)
        return report

    def _serve_loop(
        self, trace, cfg, report, registry, checkpoint, skip_packets: int = 0
    ) -> None:
        with span(
            "cluster.serve",
            shards=self.n_shards,
            executor=self.executor_kind,
            chunk_size=cfg.chunk_size,
        ):
            if registry.enabled:
                registry.gauge("cluster.n_shards").set(float(self.n_shards))
            chunk_start = time.perf_counter()
            for chunk, partition, outcomes in self._iter_chunk_replays(
                trace, cfg.chunk_size, report.n_chunks, skip_packets=skip_packets
            ):
                index = report.n_chunks  # == start_index + offset
                merged = self._merge_outcomes(partition, outcomes)
                self._publish_chunk(merged, outcomes)

                n = merged.n_packets
                stats = ChunkStats(
                    n_packets=n,
                    malicious_rate=float(np.mean(merged.y_pred)) if n else 0.0,
                    path_fractions=_path_fractions(merged.counters, n),
                )
                report.chunk_offsets.append(report.n_packets)
                report.n_chunks += 1
                report.n_packets += n
                for k, size in enumerate(merged.shard_sizes):
                    report.shard_packets[k] += size
                report.chunk_stats.append(stats)
                report.decisions.extend(merged.decisions)
                report.y_true = np.concatenate([report.y_true, merged.y_true])
                report.y_pred = np.concatenate([report.y_pred, merged.y_pred])
                self.retrainer.observe(chunk)

                drifted = False
                if self.monitor is not None:
                    drifted = self.monitor.observe(stats)
                    if drifted:
                        report.drift_signals += 1
                if registry.enabled:
                    registry.counter("runtime.chunks").inc()
                    registry.counter("runtime.packets").inc(n)
                    if self.monitor is not None:
                        registry.gauge("runtime.drift.score").set(
                            self.monitor.last_score
                        )
                        registry.gauge("runtime.drift.malicious_rate").set(
                            stats.malicious_rate
                        )
                        if drifted:
                            registry.counter("runtime.drift.signals").inc()

                cadence_due = cfg.cadence > 0 and (index + 1) % cfg.cadence == 0
                if (
                    (drifted or cadence_due)
                    and self._swap_allowed(report)
                    and len(self.retrainer) >= cfg.min_retrain_flows
                ):
                    self._retrain_and_swap(
                        index, "drift" if drifted else "cadence", report
                    )
                self._apply_pending_controls(index, report)
                self._note_chunk(index, n, time.perf_counter() - chunk_start)
                if checkpoint is not None:
                    checkpoint.maybe_save(self, report)
                chunk_start = time.perf_counter()

    # -- checkpointing hooks -------------------------------------------------

    def shard_snapshots(self) -> List[dict]:
        """Self-contained per-shard state documents (executor-agnostic:
        under multiprocess the truth lives in the worker processes)."""
        self.start()
        return self._executor.broadcast("snapshot")
