"""Shard executors: where the cluster's workers actually run.

Both executors expose the same asynchronous verb protocol over a fleet
of :class:`~repro.cluster.worker.ShardWorker`\\ s — ``dispatch`` a
method call to one shard, ``collect`` its result, or ``broadcast`` a
call to every shard at once (dispatch-all-then-collect-all, so shards
overlap) — and the coordinator is written against that protocol alone:

* :class:`InProcessExecutor` runs every worker in the coordinator's own
  interpreter.  Fully deterministic and introspectable (tests reach
  straight into shard pipelines), and the mode the differential suite
  locks against single-pipeline replay.
* :class:`MultiprocessExecutor` runs one long-lived worker *process*
  per shard, fed over a private :class:`multiprocessing.Pipe`.  A verb
  crosses the pipe as ``(method, args, kwargs)``; the batch replay
  engine then spends its time inside numpy in that process, so shards
  genuinely overlap on multi-core hosts.  Worker exceptions never kill
  the process — they come back as data and re-raise in the coordinator
  as :class:`ShardError`, keeping the remaining shards serviceable
  (fault isolation).
* :class:`SharedMemoryExecutor` keeps the same process fleet and verb
  protocol but moves the replay data path into shared memory
  (:mod:`repro.cluster.shm`): trace columns are mapped by every worker
  once, chunks are dispatched as ``(offset, length, chunk_id)``
  descriptors over per-shard SPSC rings, and verdicts/counters come
  back through preallocated in-place return blocks — nothing bulk is
  ever pickled.

The ``fork`` start method is preferred (workers inherit their pipeline
state by address-space copy; nothing is pickled on the way in); on
platforms without it the workers are pickled through ``spawn``.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.shm import (
    STATUS_ERROR,
    STATUS_OK,
    ClusterShm,
    make_segment_name,
)
from repro.cluster.worker import ShardWorker


class ShardError(RuntimeError):
    """A shard worker raised while executing a coordinator verb."""

    def __init__(self, shard_id: int, message: str) -> None:
        super().__init__(f"shard {shard_id}: {message}")
        self.shard_id = shard_id


class InProcessExecutor:
    """All shards in the coordinator's interpreter, executed eagerly.

    ``dispatch`` runs the verb immediately (there is no concurrency to
    win in one process) and parks the result for ``collect`` — the
    coordinator's dispatch-all/collect-all pattern behaves identically
    over both executors.
    """

    kind = "inprocess"

    def __init__(self, workers: Sequence[ShardWorker]) -> None:
        self.workers: List[ShardWorker] = list(workers)
        self._pending: List[Any] = [None] * len(self.workers)

    @property
    def n_shards(self) -> int:
        return len(self.workers)

    def dispatch(self, shard_id: int, method: str, *args, **kwargs) -> None:
        try:
            result = getattr(self.workers[shard_id], method)(*args, **kwargs)
        except Exception as exc:  # noqa: BLE001 — uniform ShardError surface
            result = ShardError(shard_id, f"{type(exc).__name__}: {exc}")
        self._pending[shard_id] = result

    def collect(self, shard_id: int) -> Any:
        result, self._pending[shard_id] = self._pending[shard_id], None
        if isinstance(result, ShardError):
            raise result
        return result

    def call(self, shard_id: int, method: str, *args, **kwargs) -> Any:
        self.dispatch(shard_id, method, *args, **kwargs)
        return self.collect(shard_id)

    def broadcast(self, method: str, *args, per_shard_args=None, **kwargs) -> List[Any]:
        """Run *method* on every shard; per-shard positional args come
        from ``per_shard_args[k]`` (a tuple), shared args from ``args``."""
        for k in range(self.n_shards):
            extra = per_shard_args[k] if per_shard_args is not None else ()
            self.dispatch(k, method, *extra, *args, **kwargs)
        return [self.collect(k) for k in range(self.n_shards)]

    def close(self) -> None:  # symmetric with the multiprocess executor
        pass

    def __enter__(self) -> "InProcessExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _close_stale_fds(stale_fds) -> None:
    """Close pipe fds a forked worker inherited from earlier siblings.

    Under the fork start method, shard *k* inherits the parent-side
    pipe ends of shards ``0..k`` (they were open in the coordinator at
    fork time).  Left open, they deadlock the fleet's death: when the
    coordinator is SIGKILLed, no worker's ``recv`` ever sees EOF
    because a sibling still holds the write end — every worker lingers
    forever, pinning any inherited stdout/stderr pipes with it.  Closing
    the stale ends makes the coordinator the sole holder, so its death
    EOFs every worker and the fleet self-reaps.
    """
    for fd in stale_fds:
        try:
            os.close(fd)
        except OSError:  # pragma: no cover — already closed
            pass


def _worker_main(conn, worker: ShardWorker, stale_fds=()) -> None:
    """Verb loop of one shard process: recv → execute → send, forever.

    Exceptions are converted to ``("err", repr)`` replies so a bad verb
    (or an injected fault that escapes) degrades that one call, not the
    shard process; ``None`` is the shutdown sentinel.
    """
    _close_stale_fds(stale_fds)
    try:
        while True:
            msg = conn.recv()
            if msg is None:
                break
            method, args, kwargs = msg
            try:
                conn.send(("ok", getattr(worker, method)(*args, **kwargs)))
            except Exception as exc:  # noqa: BLE001 — shipped to coordinator
                conn.send(("err", f"{type(exc).__name__}: {exc}"))
    except (EOFError, KeyboardInterrupt):
        pass
    finally:
        conn.close()


class MultiprocessExecutor:
    """One persistent worker process per shard, driven over pipes."""

    kind = "multiprocess"
    #: Worker-process entry point; the shm executor swaps in its own.
    _worker_target = staticmethod(_worker_main)

    def __init__(self, workers: Sequence[ShardWorker]) -> None:
        try:
            ctx = mp.get_context("fork")
        except ValueError:  # pragma: no cover — non-fork platforms
            ctx = mp.get_context("spawn")
        self._conns = []
        self._procs = []
        self._in_flight = [False] * len(workers)
        # Forked children inherit every parent-side pipe end open at
        # fork time; each child closes those stale fds on entry (see
        # _close_stale_fds).  Under spawn nothing leaks, so pass none.
        forked = ctx.get_start_method() == "fork"
        stale_fds: List[int] = []
        for worker in workers:
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=type(self)._worker_target,
                args=(
                    child,
                    worker,
                    tuple(stale_fds) + (parent.fileno(),) if forked else (),
                ),
                daemon=True,
                name=f"repro-shard-{worker.shard_id}",
            )
            proc.start()
            child.close()
            if forked:
                stale_fds.append(parent.fileno())
            self._conns.append(parent)
            self._procs.append(proc)

    @property
    def n_shards(self) -> int:
        return len(self._procs)

    def dispatch(self, shard_id: int, method: str, *args, **kwargs) -> None:
        if self._in_flight[shard_id]:
            raise RuntimeError(f"shard {shard_id} already has a verb in flight")
        self._conns[shard_id].send((method, args, kwargs))
        self._in_flight[shard_id] = True

    def collect(self, shard_id: int) -> Any:
        if not self._in_flight[shard_id]:
            raise RuntimeError(f"shard {shard_id} has no verb in flight")
        self._in_flight[shard_id] = False
        try:
            status, payload = self._conns[shard_id].recv()
        except (EOFError, ConnectionResetError):
            # EOF for an orderly close, ECONNRESET when the peer was
            # SIGKILLed with the message half-written — same diagnosis.
            raise ShardError(shard_id, "worker process died") from None
        if status == "err":
            raise ShardError(shard_id, payload)
        return payload

    def call(self, shard_id: int, method: str, *args, **kwargs) -> Any:
        self.dispatch(shard_id, method, *args, **kwargs)
        return self.collect(shard_id)

    def broadcast(self, method: str, *args, per_shard_args=None, **kwargs) -> List[Any]:
        for k in range(self.n_shards):
            extra = per_shard_args[k] if per_shard_args is not None else ()
            self.dispatch(k, method, *extra, *args, **kwargs)
        return [self.collect(k) for k in range(self.n_shards)]

    def close(self) -> None:
        for conn, proc in zip(self._conns, self._procs):
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for conn, proc in zip(self._conns, self._procs):
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover — stuck worker
                proc.terminate()
                proc.join(timeout=1.0)
            conn.close()

    def __enter__(self) -> "MultiprocessExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _serve_descriptor(
    shm: ClusterShm, worker: ShardWorker, rec: Tuple[int, ...]
) -> dict:
    """Serve one ``(offset, length, chunk_id)`` descriptor in a worker.

    Results flow back entirely through shared memory: verdicts land in
    the shared column at the descriptor's own rows, counter deltas and
    gauges in this shard's fixed-layout blocks, and the completion
    record on the shard's completion ring.  Returns the counter *spill*
    — names a hot-swapped generation grew beyond the pre-fork block
    layout — which rides the doorbell ack over the pipe (tiny, rare).
    A replay exception becomes an error-block message plus a
    ``STATUS_ERROR`` completion — the worker process survives, exactly
    like the pipe transport's ``("err", …)`` replies.
    """
    offset, length, chunk_id = rec
    k = worker.shard_id
    try:
        outcome = worker.replay_chunk_columns(shm.columns(offset, length), chunk_id)
        shm.write_verdicts(offset, np.asarray(outcome.y_pred, dtype=np.uint8))
        spill = shm.write_counter_deltas(k, outcome.counter_deltas)
        shm.write_gauges(k, outcome.gauges)
        shm.completion_ring(k).try_push((chunk_id, length, STATUS_OK))
        return spill
    except Exception as exc:  # noqa: BLE001 — shipped via the error block
        shm.write_error(k, f"{type(exc).__name__}: {exc}")
        shm.completion_ring(k).try_push((chunk_id, length, STATUS_ERROR))
        return {}


def _worker_main_shm(conn, worker: ShardWorker, stale_fds=()) -> None:
    """Verb loop of one shm-transport shard process.

    The pipe still carries every control verb (stage/commit/abort/
    snapshot/finish/shutdown) exactly as :func:`_worker_main` does, plus
    two transport verbs: ``attach_shm`` maps the cluster segment by
    name, and ``serve_ring`` — the coordinator's doorbell — drains this
    shard's submit ring, serving each descriptor via
    :func:`_serve_descriptor`.  Only the few-byte doorbell and its ack
    cross the pipe on the hot path; packets, verdicts, counters, and
    errors all travel through shared memory.  Blocking on ``recv``
    (rather than spinning on the ring) keeps idle shards costless on
    oversubscribed hosts.
    """
    _close_stale_fds(stale_fds)
    shm: Optional[ClusterShm] = None
    try:
        while True:
            msg = conn.recv()
            if msg is None:
                break
            method, args, kwargs = msg
            try:
                if method == "attach_shm":
                    if shm is not None:  # re-attach after arena growth
                        shm.close()
                    shm = ClusterShm.attach(**args[0])
                    conn.send(("ok", True))
                elif method == "serve_ring":
                    if shm is None:
                        raise RuntimeError("serve_ring before attach_shm")
                    ring = shm.submit_ring(worker.shard_id)
                    served = 0
                    spill: dict = {}
                    while (rec := ring.try_pop()) is not None:
                        for name, v in _serve_descriptor(shm, worker, rec).items():
                            spill[name] = spill.get(name, 0) + v
                        served += 1
                    conn.send(("ok", (served, spill)))
                else:
                    conn.send(("ok", getattr(worker, method)(*args, **kwargs)))
            except Exception as exc:  # noqa: BLE001 — shipped to coordinator
                conn.send(("err", f"{type(exc).__name__}: {exc}"))
    except (EOFError, KeyboardInterrupt):
        pass
    finally:
        if shm is not None:
            shm.close()
        conn.close()


class SharedMemoryExecutor(MultiprocessExecutor):
    """Worker processes fed by shared-memory descriptor rings.

    Same process fleet and verb protocol as
    :class:`MultiprocessExecutor`, but the replay data path is zero-copy
    (see :mod:`repro.cluster.shm`): the coordinator writes the trace
    columns into one shared segment once, ``dispatch_descriptor`` pushes
    an ``(offset, length, chunk_id)`` tuple onto the target shard's SPSC
    ring (plus a doorbell verb over the pipe so idle workers can block
    instead of spin), and ``collect_completion`` reads the fixed-layout
    return blocks the worker filled in place.

    Counter and gauge block layouts are fixed **pre-fork** from the
    template worker's telemetry name set (static per pipeline), so
    result collection never deserialises anything.

    Lifecycle: this executor *owns* the segment — it creates (or, given
    a ``segment_name`` from a checkpoint, re-maps) it lazily on first
    :meth:`ensure_arena` and unlinks it in :meth:`close` on every exit
    path, including after a worker crash.  Segments are detached from
    the ``resource_tracker`` so a SIGKILLed coordinator leaves the
    segment for resume to re-map; the checkpoint document records the
    name.
    """

    kind = "shm"
    _worker_target = staticmethod(_worker_main_shm)

    def __init__(
        self,
        workers: Sequence[ShardWorker],
        segment_name: Optional[str] = None,
    ) -> None:
        workers = list(workers)
        if not workers:
            raise ValueError("shm executor needs at least one worker")
        self.segment_name = segment_name or make_segment_name()
        # Fixed return-block layouts, computed before the fork below so
        # coordinator and workers agree on them by inheritance.
        self.counter_names = sorted(workers[0].counters())
        self.gauge_names = sorted(workers[0].pipeline.telemetry_gauges())
        self.shm: Optional[ClusterShm] = None
        #: Whether the last :meth:`ensure_arena` re-mapped an existing
        #: segment (checkpoint-resume) rather than allocating a new one.
        self.remapped = False
        super().__init__(workers)

    def ensure_arena(self, capacity: int) -> ClusterShm:
        """Make the shared arena hold at least *capacity* packet rows.

        Re-maps the named segment if a sufficient one already exists
        (resume), allocates otherwise; on growth the old segment is
        unlinked first and every worker re-attaches.  No-op when the
        current arena is already big enough.
        """
        capacity = max(1, int(capacity))
        if self.shm is not None and self.shm.capacity >= capacity:
            return self.shm
        if self.shm is not None:
            self.shm.unlink()
            self.shm = None
        self.shm, self.remapped = ClusterShm.adopt(
            self.segment_name,
            capacity,
            self.n_shards,
            self.counter_names,
            self.gauge_names,
        )
        self.broadcast("attach_shm", self.shm.describe())
        return self.shm

    def dispatch_descriptor(
        self, shard_id: int, offset: int, length: int, chunk_id: int
    ) -> None:
        """Hand shard *shard_id* the rows ``[offset, offset+length)``."""
        if self.shm is None:
            raise RuntimeError("ensure_arena() before dispatching descriptors")
        if not self.shm.submit_ring(shard_id).try_push(
            (int(offset), int(length), int(chunk_id))
        ):
            raise RuntimeError(f"shard {shard_id}: submit ring full")
        self.dispatch(shard_id, "serve_ring")

    def collect_completion(self, shard_id: int) -> Tuple[int, int, Dict[str, int]]:
        """Await shard *shard_id*'s completion; ``(chunk_id, n_packets, spill)``.

        Worker death surfaces as the pipe-level :class:`ShardError` from
        :meth:`collect`; a replay failure inside the worker surfaces as
        a ``STATUS_ERROR`` completion whose message is read back from
        the shard's error block.  *spill* holds counter deltas whose
        names fall outside the pre-fork block layout (a hot-swapped
        generation can grow the counter set); it rides the doorbell ack.
        """
        ack = self.collect(shard_id)  # doorbell ack (or worker-death EOF)
        spill = ack[1] if isinstance(ack, tuple) else {}
        rec = self.shm.completion_ring(shard_id).try_pop()
        if rec is None:
            raise ShardError(shard_id, "ring served but no completion record")
        chunk_id, n_packets, status = rec
        if status != STATUS_OK:
            raise ShardError(shard_id, self.shm.read_error(shard_id) or "worker error")
        return chunk_id, n_packets, spill

    def close(self) -> None:
        """Shut the fleet down, then reap the shared segment.

        Runs the segment unlink even when workers crashed or hang —
        the coordinator owns the segment and this is the one place its
        life ends (SIGKILL of the whole coordinator being the deliberate
        exception, handled by resume's re-map)."""
        try:
            super().close()
        finally:
            if self.shm is not None:
                self.shm.unlink()
                self.shm = None


EXECUTOR_KINDS = ("inprocess", "multiprocess", "shm")


def make_executor(
    kind: str, workers: Sequence[ShardWorker], shm_name: Optional[str] = None
):
    """Build the executor named *kind* over *workers*.

    ``shm_name`` pins the shared segment name of the ``"shm"`` executor
    (checkpoint-resume re-maps by name); other kinds ignore it.
    """
    if kind == "inprocess":
        return InProcessExecutor(workers)
    if kind == "multiprocess":
        return MultiprocessExecutor(workers)
    if kind == "shm":
        return SharedMemoryExecutor(workers, segment_name=shm_name)
    raise ValueError(f"executor must be one of {EXECUTOR_KINDS}, got {kind!r}")
