"""Shard executors: where the cluster's workers actually run.

Both executors expose the same asynchronous verb protocol over a fleet
of :class:`~repro.cluster.worker.ShardWorker`\\ s — ``dispatch`` a
method call to one shard, ``collect`` its result, or ``broadcast`` a
call to every shard at once (dispatch-all-then-collect-all, so shards
overlap) — and the coordinator is written against that protocol alone:

* :class:`InProcessExecutor` runs every worker in the coordinator's own
  interpreter.  Fully deterministic and introspectable (tests reach
  straight into shard pipelines), and the mode the differential suite
  locks against single-pipeline replay.
* :class:`MultiprocessExecutor` runs one long-lived worker *process*
  per shard, fed over a private :class:`multiprocessing.Pipe`.  A verb
  crosses the pipe as ``(method, args, kwargs)``; the batch replay
  engine then spends its time inside numpy in that process, so shards
  genuinely overlap on multi-core hosts.  Worker exceptions never kill
  the process — they come back as data and re-raise in the coordinator
  as :class:`ShardError`, keeping the remaining shards serviceable
  (fault isolation).

The ``fork`` start method is preferred (workers inherit their pipeline
state by address-space copy; nothing is pickled on the way in); on
platforms without it the workers are pickled through ``spawn``.
"""

from __future__ import annotations

import multiprocessing as mp
from typing import Any, List, Optional, Sequence

from repro.cluster.worker import ShardWorker


class ShardError(RuntimeError):
    """A shard worker raised while executing a coordinator verb."""

    def __init__(self, shard_id: int, message: str) -> None:
        super().__init__(f"shard {shard_id}: {message}")
        self.shard_id = shard_id


class InProcessExecutor:
    """All shards in the coordinator's interpreter, executed eagerly.

    ``dispatch`` runs the verb immediately (there is no concurrency to
    win in one process) and parks the result for ``collect`` — the
    coordinator's dispatch-all/collect-all pattern behaves identically
    over both executors.
    """

    kind = "inprocess"

    def __init__(self, workers: Sequence[ShardWorker]) -> None:
        self.workers: List[ShardWorker] = list(workers)
        self._pending: List[Any] = [None] * len(self.workers)

    @property
    def n_shards(self) -> int:
        return len(self.workers)

    def dispatch(self, shard_id: int, method: str, *args, **kwargs) -> None:
        try:
            result = getattr(self.workers[shard_id], method)(*args, **kwargs)
        except Exception as exc:  # noqa: BLE001 — uniform ShardError surface
            result = ShardError(shard_id, f"{type(exc).__name__}: {exc}")
        self._pending[shard_id] = result

    def collect(self, shard_id: int) -> Any:
        result, self._pending[shard_id] = self._pending[shard_id], None
        if isinstance(result, ShardError):
            raise result
        return result

    def call(self, shard_id: int, method: str, *args, **kwargs) -> Any:
        self.dispatch(shard_id, method, *args, **kwargs)
        return self.collect(shard_id)

    def broadcast(self, method: str, *args, per_shard_args=None, **kwargs) -> List[Any]:
        """Run *method* on every shard; per-shard positional args come
        from ``per_shard_args[k]`` (a tuple), shared args from ``args``."""
        for k in range(self.n_shards):
            extra = per_shard_args[k] if per_shard_args is not None else ()
            self.dispatch(k, method, *extra, *args, **kwargs)
        return [self.collect(k) for k in range(self.n_shards)]

    def close(self) -> None:  # symmetric with the multiprocess executor
        pass

    def __enter__(self) -> "InProcessExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _worker_main(conn, worker: ShardWorker) -> None:
    """Verb loop of one shard process: recv → execute → send, forever.

    Exceptions are converted to ``("err", repr)`` replies so a bad verb
    (or an injected fault that escapes) degrades that one call, not the
    shard process; ``None`` is the shutdown sentinel.
    """
    try:
        while True:
            msg = conn.recv()
            if msg is None:
                break
            method, args, kwargs = msg
            try:
                conn.send(("ok", getattr(worker, method)(*args, **kwargs)))
            except Exception as exc:  # noqa: BLE001 — shipped to coordinator
                conn.send(("err", f"{type(exc).__name__}: {exc}"))
    except (EOFError, KeyboardInterrupt):
        pass
    finally:
        conn.close()


class MultiprocessExecutor:
    """One persistent worker process per shard, driven over pipes."""

    kind = "multiprocess"

    def __init__(self, workers: Sequence[ShardWorker]) -> None:
        try:
            ctx = mp.get_context("fork")
        except ValueError:  # pragma: no cover — non-fork platforms
            ctx = mp.get_context("spawn")
        self._conns = []
        self._procs = []
        self._in_flight = [False] * len(workers)
        for worker in workers:
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(child, worker),
                daemon=True,
                name=f"repro-shard-{worker.shard_id}",
            )
            proc.start()
            child.close()
            self._conns.append(parent)
            self._procs.append(proc)

    @property
    def n_shards(self) -> int:
        return len(self._procs)

    def dispatch(self, shard_id: int, method: str, *args, **kwargs) -> None:
        if self._in_flight[shard_id]:
            raise RuntimeError(f"shard {shard_id} already has a verb in flight")
        self._conns[shard_id].send((method, args, kwargs))
        self._in_flight[shard_id] = True

    def collect(self, shard_id: int) -> Any:
        if not self._in_flight[shard_id]:
            raise RuntimeError(f"shard {shard_id} has no verb in flight")
        self._in_flight[shard_id] = False
        try:
            status, payload = self._conns[shard_id].recv()
        except EOFError:
            raise ShardError(shard_id, "worker process died") from None
        if status == "err":
            raise ShardError(shard_id, payload)
        return payload

    def call(self, shard_id: int, method: str, *args, **kwargs) -> Any:
        self.dispatch(shard_id, method, *args, **kwargs)
        return self.collect(shard_id)

    def broadcast(self, method: str, *args, per_shard_args=None, **kwargs) -> List[Any]:
        for k in range(self.n_shards):
            extra = per_shard_args[k] if per_shard_args is not None else ()
            self.dispatch(k, method, *extra, *args, **kwargs)
        return [self.collect(k) for k in range(self.n_shards)]

    def close(self) -> None:
        for conn, proc in zip(self._conns, self._procs):
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for conn, proc in zip(self._conns, self._procs):
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover — stuck worker
                proc.terminate()
                proc.join(timeout=1.0)
            conn.close()

    def __enter__(self) -> "MultiprocessExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


EXECUTOR_KINDS = ("inprocess", "multiprocess")


def make_executor(kind: str, workers: Sequence[ShardWorker]):
    """Build the executor named *kind* over *workers*."""
    if kind == "inprocess":
        return InProcessExecutor(workers)
    if kind == "multiprocess":
        return MultiprocessExecutor(workers)
    raise ValueError(f"executor must be one of {EXECUTOR_KINDS}, got {kind!r}")
