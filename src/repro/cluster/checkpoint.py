"""Cluster-consistent checkpoints: one atomic document, per-shard inside.

A cluster checkpoint is a *single* JSON document written with the same
tmp-write + fsync + ``os.replace`` protocol as the single-service
checkpoint (the writer is literally
:class:`~repro.runtime.checkpoint.CheckpointManager` with the document
builder swapped out), so the on-disk state is always one internally
consistent cluster cut — never shard 3 at chunk 12 next to shard 0 at
chunk 11.

Inside, every shard's section is **self-contained** (its pipeline,
fault-plan state, and progress counters serialise independently via the
PR 4 leaf serialisers): :func:`restore_shard` rebuilds any single shard
without touching the others, which is what makes per-shard crash
recovery and fault post-mortems possible, while :func:`restore_cluster`
rebuilds the whole service + report for ``repro resume``.

``repro resume`` dispatches on the ``schema`` field —
``repro.checkpoint/v1`` resumes the single service,
``repro.cluster-checkpoint/v1`` the cluster — via
:func:`load_any_checkpoint`.
"""

from __future__ import annotations

from dataclasses import asdict
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import json

import numpy as np

from repro.cluster.service import (
    ClusterServeReport,
    ClusterService,
    ClusterSwapEvent,
)
from repro.cluster.shm import unlink_segment
from repro.cluster.worker import ShardWorker
from repro.faults.plan import INJECTOR_TYPES, FaultPlan, parse_fault_spec
from repro.runtime.checkpoint import (
    SCHEMA as SERVICE_SCHEMA,
    CheckpointManager,
    PathLike,
    _chunk_stats_from_obj,
    _chunk_stats_to_obj,
    _monitor_from_obj,
    _monitor_to_obj,
    _pipeline_from_obj,
    _pipeline_to_obj,
    _retrainer_from_obj,
    _retrainer_to_obj,
)
from repro.runtime.service import RuntimeConfig

CLUSTER_SCHEMA = "repro.cluster-checkpoint/v1"


# --------------------------------------------------------------------------
# Report serialisation
# --------------------------------------------------------------------------


def cluster_report_to_dict(report: ClusterServeReport) -> dict:
    """Serialise a cluster serve report (``decisions`` excluded, as for
    the single service — evaluation sugar, unbounded in size)."""
    return {
        "n_shards": report.n_shards,
        "n_chunks": report.n_chunks,
        "n_packets": report.n_packets,
        "drift_signals": report.drift_signals,
        "retrains": report.retrains,
        "retrain_failures": report.retrain_failures,
        "fault_counts": dict(report.fault_counts),
        "shard_fault_counts": [dict(c) for c in report.shard_fault_counts],
        "shard_packets": list(report.shard_packets),
        "swap_events": [asdict(e) for e in report.swap_events],
        "chunk_stats": [_chunk_stats_to_obj(s) for s in report.chunk_stats],
        "chunk_offsets": list(report.chunk_offsets),
        "control_events": [dict(t) for t in report.control_events],
        "y_true": [int(v) for v in report.y_true],
        "y_pred": [int(v) for v in report.y_pred],
    }


def cluster_report_from_dict(obj: dict) -> ClusterServeReport:
    return ClusterServeReport(
        n_shards=int(obj["n_shards"]),
        n_chunks=int(obj["n_chunks"]),
        n_packets=int(obj["n_packets"]),
        drift_signals=int(obj["drift_signals"]),
        retrains=int(obj["retrains"]),
        retrain_failures=int(obj["retrain_failures"]),
        fault_counts={k: int(v) for k, v in obj["fault_counts"].items()},
        shard_fault_counts=[
            {k: int(v) for k, v in c.items()} for c in obj["shard_fault_counts"]
        ],
        shard_packets=[int(v) for v in obj["shard_packets"]],
        swap_events=[ClusterSwapEvent(**e) for e in obj["swap_events"]],
        chunk_stats=[_chunk_stats_from_obj(s) for s in obj["chunk_stats"]],
        chunk_offsets=[int(v) for v in obj["chunk_offsets"]],
        # .get: checkpoints written before the ops surface lack the key.
        control_events=[dict(t) for t in obj.get("control_events", [])],
        y_true=np.asarray(obj["y_true"], dtype=int),
        y_pred=np.asarray(obj["y_pred"], dtype=int),
    )


# --------------------------------------------------------------------------
# Whole-cluster snapshot
# --------------------------------------------------------------------------


def cluster_to_dict(
    service: ClusterService,
    report: ClusterServeReport,
    meta: Optional[Dict] = None,
) -> dict:
    """One self-contained document capturing the full cluster state."""
    return {
        "schema": CLUSTER_SCHEMA,
        "meta": dict(meta or {}),
        "config": asdict(service.config),
        "n_shards": service.n_shards,
        "executor": service.executor_kind,
        # The live shared-segment name (shm executor only): a resumed
        # run re-maps the surviving segment instead of re-allocating.
        "shm_name": service.shm_segment_name,
        "router_salt": service.router.salt,
        "faults_spec": service.faults_spec,
        "coordinator_faults": None
        if service.faults is None
        else service.faults.state_dict(),
        "report": cluster_report_to_dict(report),
        "retrainer": _retrainer_to_obj(service.retrainer),
        "monitor": _monitor_to_obj(service.monitor),
        "shards": service.shard_snapshots(),
    }


def _shard_faults_from_obj(shard_doc: dict) -> Optional[FaultPlan]:
    if shard_doc.get("faults") is None:
        return None
    spec = shard_doc.get("faults_spec")
    if spec is None:
        raise ValueError(
            "shard checkpoint holds a fault plan built without a spec; "
            "rebuild the worker manually and load_state() its plan"
        )
    # Rebuild with this shard's fan-out seed, then restore injector
    # state, so the resumed schedule continues the uninterrupted one.
    _, clauses = parse_fault_spec(spec)
    plan = FaultPlan(
        [INJECTOR_TYPES[name](**params) for name, params in clauses],
        seed=shard_doc["faults_seed"],
        spec=spec,
    )
    plan.load_state(shard_doc["faults"])
    return plan


def restore_shard(
    doc: dict, shard_id: int, mode: str = "batch", keep_decisions: bool = True
) -> ShardWorker:
    """Rebuild one shard's worker from a cluster checkpoint document.

    Reads only ``doc["shards"][shard_id]`` — shard sections are
    self-contained, so one crashed shard can be reconstructed (or
    inspected post-mortem) without deserialising the rest of the
    cluster.
    """
    shard_doc = doc["shards"][shard_id]
    if int(shard_doc["shard_id"]) != shard_id:
        raise ValueError(
            f"shard section {shard_id} claims id {shard_doc['shard_id']}"
        )
    worker = ShardWorker(
        shard_id,
        _pipeline_from_obj(shard_doc["pipeline"]),
        mode=mode,
        faults=_shard_faults_from_obj(shard_doc),
        keep_decisions=keep_decisions,
    )
    worker.chunks_processed = int(shard_doc["chunks_processed"])
    worker.packets_processed = int(shard_doc["packets_processed"])
    return worker


def restore_cluster(
    doc: dict,
    model_factory=None,
    executor: Optional[str] = None,
    faults: object = "auto",
) -> Tuple[ClusterService, ClusterServeReport]:
    """Rebuild ``(service, report)`` from a cluster checkpoint document.

    ``executor`` overrides the checkpointed executor kind (a run started
    multiprocess can resume in-process and vice versa — shard state is
    executor-agnostic).  ``faults`` follows
    :func:`repro.runtime.checkpoint.restore_service`: ``"auto"``
    restores every plan from its stored spec + state, ``None`` resumes
    fault-free.
    """
    if not isinstance(doc, dict) or doc.get("schema") != CLUSTER_SCHEMA:
        raise ValueError(f"not a {CLUSTER_SCHEMA} checkpoint document")
    kind = executor or doc["executor"]
    shm_name = doc.get("shm_name")
    if shm_name is not None and kind != "shm":
        # The checkpointed run owned a shared segment but the resumed
        # one won't adopt it — reap the orphan now (a SIGKILLed shm
        # coordinator deliberately leaves its segment behind for us).
        unlink_segment(shm_name)
        shm_name = None
    keep = kind == "inprocess"
    n_shards = int(doc["n_shards"])
    config = RuntimeConfig(**doc["config"])

    if faults == "auto":
        workers = [
            restore_shard(doc, k, mode=config.mode, keep_decisions=keep)
            for k in range(n_shards)
        ]
        coordinator = None
        if doc.get("coordinator_faults") is not None:
            spec = doc.get("faults_spec")
            if spec is None:
                raise ValueError(
                    "checkpoint holds coordinator fault state without a spec"
                )
            coordinator = FaultPlan.from_spec(spec)
            coordinator.load_state(doc["coordinator_faults"])
    else:
        workers = [
            ShardWorker(
                k,
                _pipeline_from_obj(doc["shards"][k]["pipeline"]),
                mode=config.mode,
                faults=None,
                keep_decisions=keep,
            )
            for k in range(n_shards)
        ]
        for k, w in enumerate(workers):
            w.chunks_processed = int(doc["shards"][k]["chunks_processed"])
            w.packets_processed = int(doc["shards"][k]["packets_processed"])
        coordinator = None if faults is None else faults

    service = ClusterService(
        workers=workers,
        config=config,
        executor=kind,
        retrainer=_retrainer_from_obj(doc["retrainer"], model_factory=model_factory),
        monitor=_monitor_from_obj(doc["monitor"]),
        coordinator_faults=coordinator,
        faults_spec=doc.get("faults_spec"),
        router_salt=int(doc["router_salt"]),
        shm_name=shm_name,
    )
    return service, cluster_report_from_dict(doc["report"])


# --------------------------------------------------------------------------
# Durable checkpoint files
# --------------------------------------------------------------------------


class ClusterCheckpointManager(CheckpointManager):
    """The PR 4 journaled atomic-replace writer, emitting cluster docs.

    Only the document builder differs; the durability protocol, journal,
    and ``every``-th-chunk thinning are inherited unchanged — one
    ``checkpoint.json`` per cluster, always a consistent cut."""

    def _document(self, service: ClusterService, report: ClusterServeReport) -> dict:
        return cluster_to_dict(service, report, meta=self.meta)

    @staticmethod
    def load(directory: PathLike) -> dict:
        path = Path(directory) / CheckpointManager.FILENAME
        doc = json.loads(path.read_text())
        if not isinstance(doc, dict) or doc.get("schema") != CLUSTER_SCHEMA:
            raise ValueError(f"{path} is not a {CLUSTER_SCHEMA} checkpoint")
        return doc


def load_any_checkpoint(directory: PathLike) -> dict:
    """Load a checkpoint of either schema (``repro resume`` dispatches
    on the returned document's ``schema`` field)."""
    path = Path(directory) / CheckpointManager.FILENAME
    doc = json.loads(path.read_text())
    schema = doc.get("schema") if isinstance(doc, dict) else None
    if schema not in (SERVICE_SCHEMA, CLUSTER_SCHEMA):
        raise ValueError(
            f"{path} is not a known checkpoint "
            f"(schema {schema!r}, expected {SERVICE_SCHEMA} or {CLUSTER_SCHEMA})"
        )
    return doc
