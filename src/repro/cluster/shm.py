"""Zero-copy shared-memory transport: arena, descriptor rings, return blocks.

This module is the data plane of the cluster's ``shm`` executor — the
DPDK-style descriptor-passing design: instead of pickling packet
payloads through a pipe per chunk, the coordinator writes the whole
trace's :class:`~repro.switch.batch.TraceColumns` into one shared
segment **once**, and from then on only fixed-layout descriptors and
return blocks cross the process boundary:

* **Trace block** — the six packet columns plus a parallel ``verdicts``
  column.  Workers map it at attach time and read their rows through
  ``(offset, length)`` slices; verdicts are written *in place* at the
  same rows, so results come back without any serialisation either.
* **Submit rings** — one :class:`SpscRing` per shard carrying
  ``(offset, length, chunk_id)`` descriptors from the coordinator
  (single producer) to that shard's worker (single consumer).
* **Completion rings** — the mirror direction, carrying
  ``(chunk_id, n_packets, status)``.
* **Counter / gauge blocks** — preallocated per-shard arrays with one
  slot per telemetry name (the name → slot mapping is fixed at attach
  time), written in place by the worker after each chunk and read by
  the coordinator without deserialisation.

Ring protocol (single-producer / single-consumer, Lamport indices plus
per-slot sequence stamps):

* The producer writes the record words first, then stamps the slot with
  ``head + 1``, then advances ``head``.  The consumer only reads slots
  with ``tail < head``; the stamp must equal ``tail + 1`` both before
  and after copying the record, otherwise the read was torn (a
  half-written or overwritten slot) and :class:`TornReadError` is
  raised rather than returning garbage.
* ``push`` on a full ring and ``pop`` on an empty ring return
  ``False``/``None`` — backpressure is the caller's policy, the ring
  never blocks.

Ownership and lifecycle: the **coordinator owns every segment**.  It
creates them, it is the only process that ever calls ``unlink``, and it
unregisters them from ``multiprocessing.resource_tracker`` so that no
helper process reaps them behind its back — which is precisely what
lets a SIGKILLed coordinator leave its segment behind for
checkpoint-resume to re-map (the checkpoint stores the segment name),
and what obliges :meth:`ClusterShm.unlink` to run from ``close()`` on
every exit path, including after a worker crash.  Workers only ever
``attach`` and ``close``.
"""

from __future__ import annotations

import secrets
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.switch.batch import TraceColumns

#: Prefix of every segment this module creates — the teardown tests (and
#: operators) can audit ``/dev/shm`` for residue by this name alone.
SHM_PREFIX = "repro_shm_"

#: Depth of each per-shard descriptor ring.  The coordinator runs the
#: shard fleet in lockstep (one verb in flight per shard), so depth
#: buys protocol headroom, not throughput; 64 descriptors is plenty.
RING_CAPACITY = 64

#: Fixed size of the per-shard error report block (UTF-8, truncated).
ERROR_BYTES = 2048

#: Ring record layouts: coordinator → worker and worker → coordinator.
SUBMIT_WORDS = 3  # (offset, length, chunk_id)
COMPLETE_WORDS = 3  # (chunk_id, n_packets, status)

#: Completion status codes.
STATUS_OK = 0
STATUS_ERROR = 1

_ALIGN = 64
_HEADER_WORDS = 4  # capacity, head, tail, record_words


class TornReadError(RuntimeError):
    """A ring slot changed under the consumer — the read cannot be trusted."""


def _untracked_shm(
    name: str, create: bool = False, size: int = 0
) -> shared_memory.SharedMemory:
    """Open a segment *without* ever registering it with the tracker.

    The tracker's job is to unlink segments whose creator died — but our
    lifecycle *wants* segments to outlive a SIGKILLed coordinator so a
    resumed run can re-map them (the checkpoint document records the
    name).  On this CPython ``SharedMemory.__init__`` registers both
    creations *and* attachments; a register-then-unregister dance is not
    enough, because several workers attaching the same name concurrently
    interleave their (register, unregister) pairs in the tracker's
    set-backed cache and the second remove logs a spurious ``KeyError``.
    Suppressing the registration at the source sends no message at all.
    """
    saved = resource_tracker.register

    def _quiet(res_name: str, rtype: str) -> None:  # pragma: no cover
        if rtype != "shared_memory":
            saved(res_name, rtype)

    resource_tracker.register = _quiet
    try:
        if create:
            return shared_memory.SharedMemory(name=name, create=True, size=size)
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = saved


def _unlink_tracked(shm: shared_memory.SharedMemory) -> None:
    """``shm.unlink()`` for a segment :func:`_untracked_shm` opened.

    ``SharedMemory.unlink`` unconditionally unregisters from the
    tracker; registering first keeps the tracker's cache balanced so its
    shutdown never logs a spurious ``KeyError``.  Only the coordinator
    unlinks, so this (register, unregister) pair is emitted by a single
    process and cannot interleave with another segment owner's.
    """
    try:  # pragma: no cover — tracker bookkeeping only
        resource_tracker.register(shm._name, "shared_memory")
    except Exception:
        pass
    try:
        shm.unlink()
    except FileNotFoundError:
        try:  # pragma: no cover — drop the balancing registration
            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:
            pass
        raise


class SpscRing:
    """Single-producer / single-consumer descriptor ring over shared int64s.

    The backing store is any writable ``(words,)`` int64 array — a view
    into a shared-memory segment in production, a plain numpy array in
    the property tests.  Layout: a 4-word header ``(capacity, head,
    tail, record_words)`` followed by ``capacity`` slots of ``1 +
    record_words`` words (sequence stamp, then the record).
    """

    def __init__(self, words: np.ndarray) -> None:
        if words.dtype != np.int64 or words.ndim != 1:
            raise ValueError("ring storage must be a flat int64 array")
        self._w = words
        self.capacity = int(words[0])
        self.record_words = int(words[3])
        if self.capacity < 1 or self.record_words < 1:
            raise ValueError("ring storage is not initialised")
        if len(words) < self.words_needed(self.capacity, self.record_words):
            raise ValueError("ring storage smaller than its declared layout")

    @staticmethod
    def words_needed(capacity: int, record_words: int) -> int:
        """Total int64 words a ring of this shape occupies."""
        return _HEADER_WORDS + capacity * (1 + record_words)

    @classmethod
    def create(cls, words: np.ndarray, capacity: int, record_words: int) -> "SpscRing":
        """Initialise *words* as an empty ring (producer side, once)."""
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        needed = cls.words_needed(capacity, record_words)
        if len(words) < needed:
            raise ValueError(f"need {needed} words, got {len(words)}")
        words[:needed] = 0
        words[0] = capacity
        words[3] = record_words
        return cls(words)

    @classmethod
    def attach(cls, words: np.ndarray) -> "SpscRing":
        """Map an already-initialised ring (consumer side)."""
        return cls(words)

    def __len__(self) -> int:
        return int(self._w[1]) - int(self._w[2])

    @property
    def head(self) -> int:
        return int(self._w[1])

    @property
    def tail(self) -> int:
        return int(self._w[2])

    def _slot(self, seq: int) -> int:
        return _HEADER_WORDS + (seq % self.capacity) * (1 + self.record_words)

    def try_push(self, record: Sequence[int]) -> bool:
        """Publish *record*; ``False`` when the ring is full (backpressure)."""
        if len(record) != self.record_words:
            raise ValueError(
                f"record has {len(record)} words, ring carries {self.record_words}"
            )
        head = int(self._w[1])
        if head - int(self._w[2]) >= self.capacity:
            return False
        slot = self._slot(head)
        self._w[slot + 1 : slot + 1 + self.record_words] = record
        # Publication order matters: payload, then the slot stamp, then
        # the head index the consumer polls.
        self._w[slot] = head + 1
        self._w[1] = head + 1
        return True

    def try_pop(self) -> Optional[Tuple[int, ...]]:
        """Consume the oldest record; ``None`` when the ring is empty.

        Raises :class:`TornReadError` if the slot's sequence stamp does
        not match the expected sequence before *and* after the record is
        copied out — the producer (or a corruptor) touched the slot
        mid-read.
        """
        tail = int(self._w[2])
        if tail >= int(self._w[1]):
            return None
        slot = self._slot(tail)
        expected = tail + 1
        if int(self._w[slot]) != expected:
            raise TornReadError(
                f"slot {tail % self.capacity}: stamp {int(self._w[slot])}, "
                f"expected {expected}"
            )
        record = tuple(int(v) for v in self._w[slot + 1 : slot + 1 + self.record_words])
        if int(self._w[slot]) != expected:  # re-check: record copy was racy
            raise TornReadError(
                f"slot {tail % self.capacity} overwritten during read"
            )
        self._w[2] = tail + 1
        return record


def _layout(
    spec: Sequence[Tuple[str, np.dtype, Tuple[int, ...]]]
) -> Tuple[int, Dict[str, Tuple[int, np.dtype, Tuple[int, ...]]]]:
    """Aligned (offset, dtype, shape) for every named array in *spec*."""
    offset = 0
    table: Dict[str, Tuple[int, np.dtype, Tuple[int, ...]]] = {}
    for name, dtype, shape in spec:
        dtype = np.dtype(dtype)
        offset = (offset + _ALIGN - 1) // _ALIGN * _ALIGN
        table[name] = (offset, dtype, tuple(int(s) for s in shape))
        offset += dtype.itemsize * int(np.prod(shape, dtype=np.int64))
    return offset, table


class ShmArena:
    """One shared-memory segment carved into named, typed numpy views."""

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        spec: Sequence[Tuple[str, np.dtype, Tuple[int, ...]]],
        owner: bool,
    ) -> None:
        self.shm = shm
        self.owner = owner
        self.size, self._table = _layout(spec)
        if shm.size < self.size:
            shm.close()
            raise ValueError(
                f"segment {shm.name} holds {shm.size} bytes, layout needs {self.size}"
            )
        self._views: Dict[str, np.ndarray] = {}
        for name, (offset, dtype, shape) in self._table.items():
            self._views[name] = np.ndarray(
                shape, dtype=dtype, buffer=shm.buf, offset=offset
            )
        self._closed = False

    @property
    def name(self) -> str:
        return self.shm.name

    @classmethod
    def required_size(cls, spec) -> int:
        return _layout(spec)[0]

    @classmethod
    def create(cls, name: str, spec) -> "ShmArena":
        size = max(1, cls.required_size(spec))
        shm = _untracked_shm(name, create=True, size=size)
        return cls(shm, spec, owner=True)

    @classmethod
    def attach(cls, name: str, spec) -> "ShmArena":
        shm = _untracked_shm(name)
        return cls(shm, spec, owner=False)

    def array(self, name: str) -> np.ndarray:
        return self._views[name]

    def close(self) -> None:
        """Drop this process's mapping (never the segment itself)."""
        if self._closed:
            return
        self._closed = True
        self._views.clear()
        try:
            self.shm.close()
        except (OSError, BufferError):  # pragma: no cover — exports alive
            pass

    def unlink(self) -> None:
        """Remove the segment from the system — owner only, idempotent."""
        self.close()
        try:
            _unlink_tracked(self.shm)
        except FileNotFoundError:
            pass


def unlink_segment(name: str) -> bool:
    """Best-effort removal of segment *name*; ``True`` if it existed.

    The reap path for orphans whose creator is gone (e.g. a checkpoint
    names a segment but the resumed run uses a different transport).
    """
    try:
        shm = _untracked_shm(name)
    except FileNotFoundError:
        return False
    shm.close()
    try:
        _unlink_tracked(shm)
    except FileNotFoundError:  # pragma: no cover — lost a race
        return False
    return True


def make_segment_name(token: Optional[str] = None) -> str:
    """A fresh (or deterministic, given *token*) segment name."""
    return SHM_PREFIX + (token if token is not None else secrets.token_hex(6))


class ClusterShm:
    """The cluster's full shared state: trace block, rings, return blocks.

    Everything lives in **one** segment so ownership is a single
    name: the coordinator creates (or re-maps) it, workers attach, and
    exactly one ``unlink`` — the coordinator's — ends its life.
    """

    def __init__(
        self,
        arena: ShmArena,
        capacity: int,
        n_shards: int,
        counter_names: Sequence[str],
        gauge_names: Sequence[str],
    ) -> None:
        self.arena = arena
        self.capacity = capacity
        self.n_shards = n_shards
        self.counter_names = list(counter_names)
        self.gauge_names = list(gauge_names)
        self._submit: List[SpscRing] = []
        self._complete: List[SpscRing] = []

    # -- layout --------------------------------------------------------------

    @staticmethod
    def spec(
        capacity: int, n_shards: int, n_counters: int, n_gauges: int
    ) -> List[Tuple[str, np.dtype, Tuple[int, ...]]]:
        cap = max(1, int(capacity))
        spec: List[Tuple[str, np.dtype, Tuple[int, ...]]] = [
            ("tuples", np.dtype(np.int64), (cap, 5)),
            ("timestamps", np.dtype(np.float64), (cap,)),
            ("sizes", np.dtype(np.int64), (cap,)),
            ("ttls", np.dtype(np.int64), (cap,)),
            ("tcp_flags", np.dtype(np.int64), (cap,)),
            ("malicious", np.dtype(np.uint8), (cap,)),
            ("verdicts", np.dtype(np.uint8), (cap,)),
        ]
        ring_words = SpscRing.words_needed(RING_CAPACITY, SUBMIT_WORDS)
        for k in range(n_shards):
            spec.extend(
                [
                    (f"submit.{k}", np.dtype(np.int64), (ring_words,)),
                    (f"complete.{k}", np.dtype(np.int64), (ring_words,)),
                    (f"counters.{k}", np.dtype(np.int64), (max(1, n_counters),)),
                    (f"gauges.{k}", np.dtype(np.float64), (max(1, n_gauges),)),
                    (f"error.{k}", np.dtype(np.uint8), (ERROR_BYTES,)),
                ]
            )
        return spec

    @classmethod
    def required_size(cls, capacity, n_shards, n_counters, n_gauges) -> int:
        return ShmArena.required_size(
            cls.spec(capacity, n_shards, n_counters, n_gauges)
        )

    # -- construction --------------------------------------------------------

    @classmethod
    def adopt(
        cls,
        name: str,
        capacity: int,
        n_shards: int,
        counter_names: Sequence[str],
        gauge_names: Sequence[str],
    ) -> Tuple["ClusterShm", bool]:
        """Coordinator side: re-map segment *name* if one of sufficient
        size already exists (the SIGKILL-resume path), else create it.

        Returns ``(shm, remapped)``.  Either way the rings are
        (re-)initialised empty — descriptors never survive a restart,
        only the segment allocation does.
        """
        spec = cls.spec(capacity, n_shards, len(counter_names), len(gauge_names))
        remapped = False
        try:
            arena = ShmArena.attach(name, spec)
            remapped = True
        except FileNotFoundError:
            arena = ShmArena.create(name, spec)
        except ValueError:  # exists but too small for this trace: replace
            unlink_segment(name)
            arena = ShmArena.create(name, spec)
        arena.owner = True  # adopter takes ownership either way
        self = cls(arena, capacity, n_shards, counter_names, gauge_names)
        for k in range(n_shards):
            self._submit.append(
                SpscRing.create(arena.array(f"submit.{k}"), RING_CAPACITY, SUBMIT_WORDS)
            )
            self._complete.append(
                SpscRing.create(
                    arena.array(f"complete.{k}"), RING_CAPACITY, COMPLETE_WORDS
                )
            )
        return self, remapped

    @classmethod
    def attach(
        cls,
        name: str,
        capacity: int,
        n_shards: int,
        counter_names: Sequence[str],
        gauge_names: Sequence[str],
    ) -> "ClusterShm":
        """Worker side: map an existing cluster segment read/write."""
        spec = cls.spec(capacity, n_shards, len(counter_names), len(gauge_names))
        arena = ShmArena.attach(name, spec)
        self = cls(arena, capacity, n_shards, counter_names, gauge_names)
        for k in range(n_shards):
            self._submit.append(SpscRing.attach(arena.array(f"submit.{k}")))
            self._complete.append(SpscRing.attach(arena.array(f"complete.{k}")))
        return self

    def describe(self) -> dict:
        """The attach parameters a worker needs, pipe-shippable."""
        return {
            "name": self.arena.name,
            "capacity": self.capacity,
            "n_shards": self.n_shards,
            "counter_names": self.counter_names,
            "gauge_names": self.gauge_names,
        }

    # -- trace block ---------------------------------------------------------

    def write_columns(self, cols: TraceColumns) -> None:
        """Coordinator: publish the (permuted) trace columns, one copy."""
        n = len(cols)
        if n > self.capacity:
            raise ValueError(f"{n} packets exceed arena capacity {self.capacity}")
        a = self.arena.array
        a("tuples")[:n] = cols.tuples
        a("timestamps")[:n] = cols.timestamps
        a("sizes")[:n] = cols.sizes
        a("ttls")[:n] = cols.ttls
        a("tcp_flags")[:n] = cols.tcp_flags
        a("malicious")[:n] = cols.malicious

    def columns(self, offset: int, length: int) -> TraceColumns:
        """Zero-copy view of rows ``[offset, offset + length)``."""
        if offset < 0 or offset + length > self.capacity:
            raise ValueError(
                f"slice [{offset}, {offset + length}) outside capacity "
                f"{self.capacity}"
            )
        stop = offset + length
        a = self.arena.array
        return TraceColumns(
            tuples=a("tuples")[offset:stop],
            timestamps=a("timestamps")[offset:stop],
            sizes=a("sizes")[offset:stop],
            ttls=a("ttls")[offset:stop],
            tcp_flags=a("tcp_flags")[offset:stop],
            malicious=a("malicious")[offset:stop],
        )

    def write_verdicts(self, offset: int, y_pred: np.ndarray) -> None:
        """Worker: publish this slice's verdicts in place."""
        self.arena.array("verdicts")[offset : offset + len(y_pred)] = y_pred

    def read_verdicts(self, offset: int, length: int) -> np.ndarray:
        return self.arena.array("verdicts")[offset : offset + length].astype(int)

    def read_truth(self, offset: int, length: int) -> np.ndarray:
        return self.arena.array("malicious")[offset : offset + length].astype(int)

    # -- rings ---------------------------------------------------------------

    def submit_ring(self, shard_id: int) -> SpscRing:
        return self._submit[shard_id]

    def completion_ring(self, shard_id: int) -> SpscRing:
        return self._complete[shard_id]

    # -- return blocks -------------------------------------------------------

    def write_counter_deltas(
        self, shard_id: int, deltas: Dict[str, int]
    ) -> Dict[str, int]:
        """Write *deltas* into the shard's fixed block; return the spill.

        The block layout is frozen pre-fork from the template pipeline's
        counter set, but a hot-swapped table generation can *grow* that
        set (e.g. ``switch.table.pl_lookups`` appears with the first PL
        table).  Such names can't land in the block — they are returned
        for the worker to ship over the control pipe instead (tiny and
        rare; the bulk path stays zero-copy).
        """
        block = self.arena.array(f"counters.{shard_id}")
        for i, name in enumerate(self.counter_names):
            block[i] = deltas.get(name, 0)
        known = set(self.counter_names)
        return {k: v for k, v in deltas.items() if k not in known}

    def read_counter_deltas(self, shard_id: int) -> Dict[str, int]:
        block = self.arena.array(f"counters.{shard_id}")
        return {name: int(block[i]) for i, name in enumerate(self.counter_names)}

    def write_gauges(self, shard_id: int, gauges: Dict[str, float]) -> None:
        block = self.arena.array(f"gauges.{shard_id}")
        for i, name in enumerate(self.gauge_names):
            block[i] = gauges.get(name, 0.0)

    def read_gauges(self, shard_id: int) -> Dict[str, float]:
        block = self.arena.array(f"gauges.{shard_id}")
        return {name: float(block[i]) for i, name in enumerate(self.gauge_names)}

    def write_error(self, shard_id: int, message: str) -> None:
        block = self.arena.array(f"error.{shard_id}")
        data = message.encode("utf-8", errors="replace")[: ERROR_BYTES - 8]
        block[:8] = np.frombuffer(
            len(data).to_bytes(8, "little"), dtype=np.uint8
        )
        block[8 : 8 + len(data)] = np.frombuffer(data, dtype=np.uint8)

    def read_error(self, shard_id: int) -> str:
        block = self.arena.array(f"error.{shard_id}")
        length = int.from_bytes(block[:8].tobytes(), "little")
        length = max(0, min(length, ERROR_BYTES - 8))
        return block[8 : 8 + length].tobytes().decode("utf-8", errors="replace")

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        self._submit.clear()
        self._complete.clear()
        self.arena.close()

    def unlink(self) -> None:
        self._submit.clear()
        self._complete.clear()
        self.arena.unlink()
