"""Sharded cluster runtime: horizontal scale-out of the serving loop.

Layout:

* :mod:`repro.cluster.router` — canonical-flow-hash partitioning
  (:class:`FlowShardRouter`), the invariant that keeps per-flow
  semantics exact across shards;
* :mod:`repro.cluster.worker` — one pipeline per shard plus the
  coordinator-driven verbs (:class:`ShardWorker`);
* :mod:`repro.cluster.shm` — the zero-copy transport: one shared
  segment holding the trace columns, per-shard SPSC descriptor rings,
  and fixed-layout verdict/counter return blocks;
* :mod:`repro.cluster.executor` — in-process (deterministic),
  multiprocess (pipe+pickle), and shared-memory (descriptor-passing)
  execution of the shard fleet;
* :mod:`repro.cluster.service` — the coordinator
  (:class:`ClusterService`): merged telemetry, cluster-wide drift →
  retrain → two-phase hot swap;
* :mod:`repro.cluster.checkpoint` — cluster-consistent atomic
  checkpoints with self-contained per-shard sections.
"""

from repro.cluster.checkpoint import (
    CLUSTER_SCHEMA,
    ClusterCheckpointManager,
    cluster_report_from_dict,
    cluster_report_to_dict,
    cluster_to_dict,
    load_any_checkpoint,
    restore_cluster,
    restore_shard,
)
from repro.cluster.executor import (
    EXECUTOR_KINDS,
    InProcessExecutor,
    MultiprocessExecutor,
    SharedMemoryExecutor,
    ShardError,
    make_executor,
)
from repro.cluster.router import ROUTER_SALT, FlowShardRouter, ShardPartition
from repro.cluster.service import (
    ClusterReplayResult,
    ClusterServeReport,
    ClusterService,
    ClusterSwapEvent,
    RowPartition,
    shard_fault_plans,
)
from repro.cluster.shm import (
    SHM_PREFIX,
    ClusterShm,
    ShmArena,
    SpscRing,
    TornReadError,
    make_segment_name,
    unlink_segment,
)
from repro.cluster.worker import (
    ShardChunkOutcome,
    ShardWorker,
    clone_pipeline,
    pack_packets,
    unpack_packets,
)

__all__ = [
    "CLUSTER_SCHEMA",
    "EXECUTOR_KINDS",
    "ROUTER_SALT",
    "SHM_PREFIX",
    "ClusterCheckpointManager",
    "ClusterReplayResult",
    "ClusterServeReport",
    "ClusterService",
    "ClusterShm",
    "ClusterSwapEvent",
    "FlowShardRouter",
    "InProcessExecutor",
    "MultiprocessExecutor",
    "RowPartition",
    "SharedMemoryExecutor",
    "ShardChunkOutcome",
    "ShardError",
    "ShardPartition",
    "ShardWorker",
    "ShmArena",
    "SpscRing",
    "TornReadError",
    "clone_pipeline",
    "cluster_report_from_dict",
    "cluster_report_to_dict",
    "cluster_to_dict",
    "load_any_checkpoint",
    "make_executor",
    "make_segment_name",
    "pack_packets",
    "restore_cluster",
    "restore_shard",
    "shard_fault_plans",
    "unlink_segment",
]
