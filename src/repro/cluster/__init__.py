"""Sharded cluster runtime: horizontal scale-out of the serving loop.

Layout:

* :mod:`repro.cluster.router` — canonical-flow-hash partitioning
  (:class:`FlowShardRouter`), the invariant that keeps per-flow
  semantics exact across shards;
* :mod:`repro.cluster.worker` — one pipeline per shard plus the
  coordinator-driven verbs (:class:`ShardWorker`);
* :mod:`repro.cluster.executor` — in-process (deterministic) and
  multiprocess (parallel) execution of the shard fleet;
* :mod:`repro.cluster.service` — the coordinator
  (:class:`ClusterService`): merged telemetry, cluster-wide drift →
  retrain → two-phase hot swap;
* :mod:`repro.cluster.checkpoint` — cluster-consistent atomic
  checkpoints with self-contained per-shard sections.
"""

from repro.cluster.checkpoint import (
    CLUSTER_SCHEMA,
    ClusterCheckpointManager,
    cluster_report_from_dict,
    cluster_report_to_dict,
    cluster_to_dict,
    load_any_checkpoint,
    restore_cluster,
    restore_shard,
)
from repro.cluster.executor import (
    EXECUTOR_KINDS,
    InProcessExecutor,
    MultiprocessExecutor,
    ShardError,
    make_executor,
)
from repro.cluster.router import ROUTER_SALT, FlowShardRouter, ShardPartition
from repro.cluster.service import (
    ClusterReplayResult,
    ClusterServeReport,
    ClusterService,
    ClusterSwapEvent,
    shard_fault_plans,
)
from repro.cluster.worker import (
    ShardChunkOutcome,
    ShardWorker,
    clone_pipeline,
    pack_packets,
    unpack_packets,
)

__all__ = [
    "CLUSTER_SCHEMA",
    "EXECUTOR_KINDS",
    "ROUTER_SALT",
    "ClusterCheckpointManager",
    "ClusterReplayResult",
    "ClusterServeReport",
    "ClusterService",
    "ClusterSwapEvent",
    "FlowShardRouter",
    "InProcessExecutor",
    "MultiprocessExecutor",
    "ShardChunkOutcome",
    "ShardError",
    "ShardPartition",
    "ShardWorker",
    "clone_pipeline",
    "cluster_report_from_dict",
    "cluster_report_to_dict",
    "cluster_to_dict",
    "load_any_checkpoint",
    "make_executor",
    "pack_packets",
    "restore_cluster",
    "restore_shard",
    "shard_fault_plans",
    "unpack_packets",
]
