"""Deterministic random-number handling.

All stochastic classes and functions in this library accept a ``seed``
argument that may be ``None``, an ``int``, or an already-constructed
:class:`numpy.random.Generator`.  Internally they normalise it with
:func:`as_rng` and derive independent child streams with :func:`spawn_rng`
so that, for instance, each iTree in a forest sees its own stream and the
result does not depend on evaluation order.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator]

#: Upper bound (exclusive) for integer seeds drawn when spawning streams.
_SEED_SPACE = 2**31 - 1


def as_rng(seed: SeedLike = None) -> np.random.Generator:
    """Normalise *seed* into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an integer seed, or an existing generator
        (returned unchanged so callers can share a stream deliberately).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise TypeError(
        f"seed must be None, an int, or a numpy Generator, got {type(seed).__name__}"
    )


def spawn_rng(rng: np.random.Generator) -> np.random.Generator:
    """Derive one independent child generator from *rng*.

    The child is seeded from the parent stream, so repeated calls yield
    distinct but reproducible streams.
    """
    return np.random.default_rng(int(rng.integers(_SEED_SPACE)))


def spawn_seeds(rng: np.random.Generator, n: int) -> list:
    """Draw *n* integer seeds from *rng* for child components."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    return [int(s) for s in rng.integers(_SEED_SPACE, size=n)]
