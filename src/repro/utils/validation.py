"""Argument validation helpers shared across the library.

These keep error messages uniform and fail fast with actionable context
instead of letting bad shapes propagate into numpy broadcasting errors
deep inside a training loop.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np


class NotFittedError(RuntimeError):
    """Raised when ``predict``/``transform`` is called before ``fit``."""


def check_fitted(obj: Any, attribute: str) -> None:
    """Raise :class:`NotFittedError` unless ``obj.attribute`` is set (non-None)."""
    if getattr(obj, attribute, None) is None:
        raise NotFittedError(
            f"{type(obj).__name__} is not fitted yet; call fit() before using it"
        )


def check_2d(x: np.ndarray, name: str = "X") -> np.ndarray:
    """Coerce *x* to a 2-D float array, raising on wrong dimensionality."""
    arr = np.asarray(x, dtype=float)
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be 2-D (n_samples, n_features), got ndim={arr.ndim}")
    if arr.shape[0] == 0:
        raise ValueError(f"{name} must contain at least one sample")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains NaN or infinite values")
    return arr


def check_positive(value: float, name: str, strict: bool = True) -> None:
    """Raise unless *value* is positive (strictly, by default)."""
    if strict and value <= 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    if not strict and value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")


def check_probability(value: float, name: str) -> None:
    """Raise unless *value* lies in [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")


def check_in_range(value: float, lo: float, hi: float, name: str) -> None:
    """Raise unless ``lo <= value <= hi``."""
    if not lo <= value <= hi:
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value}")


def check_same_length(a: Sequence, b: Sequence, name_a: str = "a", name_b: str = "b") -> None:
    """Raise unless the two sequences have equal length."""
    if len(a) != len(b):
        raise ValueError(
            f"{name_a} and {name_b} must have the same length, got {len(a)} and {len(b)}"
        )
