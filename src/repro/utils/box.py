"""Axis-aligned boxes (hyperrectangles) over feature space.

Boxes are the common currency between tree models and switch rules: every
root-to-leaf path of an iTree defines a box, the paper's "iForest
hypercubes" are boxes, and a whitelist rule is a box with a label.  The
convention throughout is half-open intervals ``[low, high)`` per feature
(matching the paper's ``q < p`` / ``q >= p`` split semantics), except
that a box whose ``high`` equals the global feature upper bound is
treated as closed there so the full domain is covered.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.rng import SeedLike, as_rng


@dataclass(frozen=True)
class Box:
    """An axis-aligned region ``∏_i [lows[i], highs[i])``."""

    lows: Tuple[float, ...]
    highs: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.lows) != len(self.highs):
            raise ValueError("lows and highs must have the same length")
        for lo, hi in zip(self.lows, self.highs):
            if lo > hi:
                raise ValueError(f"box has inverted interval [{lo}, {hi})")

    @staticmethod
    def full(n_features: int, low: float = -np.inf, high: float = np.inf) -> "Box":
        """The unbounded (or uniformly bounded) box over *n_features*."""
        return Box(tuple([low] * n_features), tuple([high] * n_features))

    @staticmethod
    def from_data(x: np.ndarray, pad: float = 0.0) -> "Box":
        """Bounding box of a data matrix, optionally padded by a fraction
        of each feature's span."""
        x = np.asarray(x, dtype=float)
        lows = x.min(axis=0)
        highs = x.max(axis=0)
        if pad > 0.0:
            span = np.where(highs > lows, highs - lows, 1.0)
            lows = lows - pad * span
            highs = highs + pad * span
        # Ensure the box is non-degenerate so the half-open convention
        # still contains the data points.
        highs = np.where(highs > lows, highs, lows + 1e-9)
        return Box(tuple(lows), tuple(highs))

    @property
    def n_features(self) -> int:
        return len(self.lows)

    def width(self, feature: int) -> float:
        return self.highs[feature] - self.lows[feature]

    def contains(self, x: np.ndarray, outer: Optional["Box"] = None) -> np.ndarray:
        """Boolean mask of rows of *x* inside the box.

        If *outer* is given, intervals touching the outer upper bound are
        treated as closed above (domain-covering semantics).
        """
        x = np.atleast_2d(np.asarray(x, dtype=float))
        lows = np.array(self.lows)
        highs = np.array(self.highs)
        inside = np.all(x >= lows, axis=1)
        if outer is None:
            inside &= np.all(x < highs, axis=1)
        else:
            outer_highs = np.array(outer.highs)
            at_top = highs >= outer_highs
            inside &= np.all((x < highs) | (at_top & (x <= highs)), axis=1)
        return inside

    def midpoint(self) -> np.ndarray:
        return (np.array(self.lows) + np.array(self.highs)) / 2.0

    def sample(self, n: int, seed: SeedLike = None) -> np.ndarray:
        """Uniform samples inside the box (requires finite bounds)."""
        lows = np.array(self.lows)
        highs = np.array(self.highs)
        if not (np.all(np.isfinite(lows)) and np.all(np.isfinite(highs))):
            raise ValueError("cannot sample from an unbounded box")
        rng = as_rng(seed)
        return rng.uniform(lows, highs, size=(n, self.n_features))

    def split(self, feature: int, value: float) -> Tuple["Box", "Box"]:
        """Split into (left: feature < value, right: feature >= value)."""
        if not self.lows[feature] <= value <= self.highs[feature]:
            raise ValueError(
                f"split value {value} outside interval "
                f"[{self.lows[feature]}, {self.highs[feature]})"
            )
        left_highs = list(self.highs)
        left_highs[feature] = value
        right_lows = list(self.lows)
        right_lows[feature] = value
        return (
            Box(self.lows, tuple(left_highs)),
            Box(tuple(right_lows), self.highs),
        )

    def clip(self, other: "Box") -> "Box":
        """Intersection with *other* (errors if empty)."""
        lows = tuple(max(a, b) for a, b in zip(self.lows, other.lows))
        highs = tuple(min(a, b) for a, b in zip(self.highs, other.highs))
        return Box(lows, highs)

    def intersects(self, other: "Box") -> bool:
        """True when the two boxes overlap with positive measure."""
        return all(
            max(a, b) < min(c, d)
            for a, b, c, d in zip(self.lows, other.lows, self.highs, other.highs)
        )

    def volume(self) -> float:
        """Product of interval widths (requires finite bounds)."""
        widths = np.array(self.highs) - np.array(self.lows)
        return float(np.prod(widths))

    def adjacent_along(self, other: "Box", feature: int) -> bool:
        """True when the boxes share a face orthogonal to *feature* —
        identical in all other dimensions and touching along this one."""
        for f in range(self.n_features):
            if f == feature:
                continue
            if self.lows[f] != other.lows[f] or self.highs[f] != other.highs[f]:
                return False
        return (
            self.highs[feature] == other.lows[feature]
            or other.highs[feature] == self.lows[feature]
        )

    def merge_along(self, other: "Box", feature: int) -> "Box":
        """Union of two face-adjacent boxes along *feature*."""
        if not self.adjacent_along(other, feature):
            raise ValueError("boxes are not face-adjacent along this feature")
        lows = list(self.lows)
        highs = list(self.highs)
        lows[feature] = min(self.lows[feature], other.lows[feature])
        highs[feature] = max(self.highs[feature], other.highs[feature])
        return Box(tuple(lows), tuple(highs))


def merge_adjacent_boxes(boxes: Sequence[Box]) -> List[Box]:
    """Greedily merge face-adjacent boxes (all same label assumed).

    Implements the paper's "merge adjacent hypercubes sharing the same
    label" step (Fig 3c).  Repeats passes over every feature until no
    merge applies; the result is order-insensitive in coverage (the union
    of regions is preserved — a property test checks this).
    """
    current = list(boxes)
    merged_any = True
    while merged_any:
        merged_any = False
        for feature in range(current[0].n_features if current else 0):
            out: List[Box] = []
            used = [False] * len(current)
            for i, box in enumerate(current):
                if used[i]:
                    continue
                acc = box
                for j in range(i + 1, len(current)):
                    if used[j]:
                        continue
                    if acc.adjacent_along(current[j], feature):
                        acc = acc.merge_along(current[j], feature)
                        used[j] = True
                        merged_any = True
                out.append(acc)
                used[i] = True
            current = out
    return current
