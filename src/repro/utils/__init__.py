"""Shared utilities: deterministic RNG handling, validation, configs.

Every stochastic component in this library accepts an explicit seed or
:class:`numpy.random.Generator` and threads it through sub-components via
:func:`spawn_rng`, so that experiments are reproducible end to end.
"""

from repro.utils.rng import as_rng, spawn_rng, spawn_seeds
from repro.utils.validation import (
    NotFittedError,
    check_2d,
    check_fitted,
    check_in_range,
    check_positive,
    check_probability,
    check_same_length,
)

__all__ = [
    "as_rng",
    "spawn_rng",
    "spawn_seeds",
    "NotFittedError",
    "check_2d",
    "check_fitted",
    "check_in_range",
    "check_positive",
    "check_probability",
    "check_same_length",
]
