"""Monotone feature transforms.

Traffic features are heavy-tailed (byte totals span six orders of
magnitude while IPDs sit in milliseconds).  iGuard's guided trees and
the autoencoders both operate in signed-log space, where the benign
manifold's proportional structure (dispersion ∝ mean) becomes additive
and axis-aligned splits can isolate it.  Because the transform is
strictly monotone per feature, every log-space range rule maps back to
an equivalent raw-space range rule — the switch never needs logarithms.
"""

from __future__ import annotations

import numpy as np


def signed_log1p(x: np.ndarray) -> np.ndarray:
    """Elementwise sign(x)·log(1+|x|) — strictly increasing, 0 ↦ 0."""
    x = np.asarray(x, dtype=float)
    return np.sign(x) * np.log1p(np.abs(x))


def signed_expm1(x: np.ndarray) -> np.ndarray:
    """Inverse of :func:`signed_log1p`."""
    x = np.asarray(x, dtype=float)
    return np.sign(x) * np.expm1(np.abs(x))
