"""Structured per-run reports (``telemetry.json``).

A report is one JSON document capturing everything a run's registry
accumulated: counters, gauges, histogram summaries, the span tree, and
the (bounded) event log.  ``repro report PATH`` pretty-prints one;
benchmarks drop one next to their printed table; the CLI's
``--telemetry PATH`` writes one for any experiment command.

Schema (``"schema": "repro.telemetry/v1"``)::

    {
      "schema":  "repro.telemetry/v1",
      "meta":    {...},                  # caller-supplied run identity
      "counters": {"switch.path.red": 12, ...},
      "gauges":   {"gridsearch.best_objective": 0.93, ...},
      "histograms": {"nn.epoch_loss": {"edges": [...],
                     "bucket_counts": [...], "count", "sum", "mean",
                     "min", "max"}, ...},
      "spans":   [{"name", "duration_s", "meta"?, "children"?: [...]}],
      "events":  [{"kind": ..., ...}, ...],
      "dropped_events": 0
    }
"""

from __future__ import annotations

import contextlib
import json
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from repro.telemetry.registry import MetricRegistry, use_registry
from repro.telemetry.sink import _jsonify

PathLike = Union[str, Path]

SCHEMA = "repro.telemetry/v1"


def build_report(registry: MetricRegistry, meta: Optional[Dict] = None) -> Dict:
    """Snapshot *registry* into the report document (plain dict)."""
    return {
        "schema": SCHEMA,
        "meta": dict(meta or {}),
        "counters": registry.counters_dict(),
        "gauges": registry.gauges_dict(),
        "histograms": registry.histograms_dict(),
        "spans": [root.to_dict() for root in registry.tracer.roots],
        "events": list(registry.events),
        "dropped_events": registry.dropped_events,
    }


def write_report(
    path: PathLike, registry: MetricRegistry, meta: Optional[Dict] = None
) -> Dict:
    """Write the registry snapshot to *path*; returns the document."""
    report = build_report(registry, meta=meta)
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(json.dumps(report, indent=2, default=_jsonify) + "\n")
    return report


def load_report(path: PathLike) -> Dict:
    """Load a saved report, validating the schema marker."""
    report = json.loads(Path(path).read_text())
    schema = report.get("schema")
    if schema != SCHEMA:
        raise ValueError(
            f"{path} is not a telemetry report (schema {schema!r}, expected {SCHEMA!r})"
        )
    return report


@contextlib.contextmanager
def run_report(
    path: Optional[PathLike], meta: Optional[Dict] = None
) -> Iterator[MetricRegistry]:
    """Activate a fresh registry for the block; write *path* on exit.

    ``path=None`` still activates a registry (useful for capturing
    telemetry programmatically) but writes nothing.  The report is
    written even when the block raises, so a failed experiment keeps its
    partial trace.
    """
    registry = MetricRegistry()
    with use_registry(registry):
        try:
            yield registry
        finally:
            if path is not None:
                write_report(path, registry, meta=meta)


# -- pretty printing ---------------------------------------------------------


def _split_shard_metrics(metrics: Dict) -> "tuple":
    """Separate ``cluster.shard.<k>.<name>`` entries from plain ones.

    Returns ``(plain, by_shard)`` where ``by_shard`` maps the integer
    shard id to ``{name: value}`` with the tag prefix stripped — the
    cluster report then renders one block per shard instead of
    interleaving every shard's copy of every counter alphabetically.
    Tags that don't parse (no integer shard id) stay in ``plain``.
    """
    plain: Dict = {}
    by_shard: Dict[int, Dict] = {}
    prefix = "cluster.shard."
    for name, value in metrics.items():
        if name.startswith(prefix):
            shard_part, _, rest = name[len(prefix) :].partition(".")
            if rest and shard_part.isdigit():
                by_shard.setdefault(int(shard_part), {})[rest] = value
                continue
        plain[name] = value
    return plain, by_shard


def _format_metric_block(
    title: str, metrics: Dict, lines: List[str], fmt, indent: str = "  "
) -> None:
    lines.append(title)
    width = max(len(n) for n in metrics)
    for name, value in metrics.items():
        lines.append(f"{indent}{name:<{width}s} {fmt(value)}")


def _format_shard_groups(by_shard: Dict[int, Dict], lines: List[str], fmt) -> None:
    for shard_id in sorted(by_shard):
        _format_metric_block(
            f"  shard {shard_id}:", by_shard[shard_id], lines, fmt, indent="    "
        )


def _format_span(node: Dict, total: float, indent: int, lines: List[str]) -> None:
    dur = float(node.get("duration_s", 0.0))
    share = f" ({100.0 * dur / total:4.1f}%)" if total > 0 else ""
    meta = node.get("meta") or {}
    meta_str = (
        "  [" + ", ".join(f"{k}={v}" for k, v in meta.items()) + "]" if meta else ""
    )
    lines.append(f"{'  ' * indent}{node['name']:<24s} {dur:10.4f}s{share}{meta_str}")
    for child in node.get("children", ()):
        _format_span(child, total, indent + 1, lines)


def format_report(report: Dict, max_events: int = 10) -> str:
    """Human-readable rendering of a report document."""
    lines: List[str] = []
    meta = report.get("meta") or {}
    header = "telemetry report"
    if meta:
        header += "  " + " ".join(f"{k}={v}" for k, v in sorted(meta.items()))
    lines.append(header)
    lines.append("=" * max(len(header), 20))

    spans = report.get("spans") or []
    if spans:
        lines.append("")
        lines.append("stages (wall time):")
        for root in spans:
            _format_span(root, float(root.get("duration_s", 0.0)), 1, lines)

    counter_fmt = lambda v: f"{v:>12d}"  # noqa: E731
    gauge_fmt = lambda v: f"{v:>14.6g}"  # noqa: E731

    counters, shard_counters = _split_shard_metrics(report.get("counters") or {})
    if counters or shard_counters:
        lines.append("")
        if counters:
            _format_metric_block("counters:", counters, lines, counter_fmt)
        else:
            lines.append("counters:")
        _format_shard_groups(shard_counters, lines, counter_fmt)

    gauges, shard_gauges = _split_shard_metrics(report.get("gauges") or {})
    if gauges or shard_gauges:
        lines.append("")
        if gauges:
            _format_metric_block("gauges:", gauges, lines, gauge_fmt)
        else:
            lines.append("gauges:")
        _format_shard_groups(shard_gauges, lines, gauge_fmt)

    histograms = report.get("histograms") or {}
    if histograms:
        lines.append("")
        lines.append("histograms:")
        width = max(len(n) for n in histograms)
        for name, h in histograms.items():
            if h.get("count"):
                lines.append(
                    f"  {name:<{width}s} n={h['count']:<7d} mean={h['mean']:.6g} "
                    f"min={h['min']:.6g} max={h['max']:.6g}"
                )
            else:
                lines.append(f"  {name:<{width}s} (empty)")

    events = report.get("events") or []
    if events:
        lines.append("")
        shown = events[:max_events]
        lines.append(f"events ({len(events)} recorded, showing {len(shown)}):")
        for ev in shown:
            fields = " ".join(f"{k}={v}" for k, v in ev.items() if k != "kind")
            lines.append(f"  {ev.get('kind', '?'):<24s} {fields}")
    dropped = report.get("dropped_events", 0)
    if dropped:
        lines.append(f"  ... {dropped} older events evicted (ring of max_events)")
    return "\n".join(lines)
