"""Hierarchical wall-time spans.

``with span("replay", mode="batch"):`` opens a timed node under the
active registry's tracer; nested ``span`` calls build a tree.  Each
completed root lands in ``tracer.roots`` and flows into the run report
as the experiment's stage breakdown (dataset → train → compile → replay
→ metrics).

When the active registry is disabled, :func:`span` returns one shared
no-op context manager — no allocation, no clock read.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class SpanNode:
    """One timed stage; ``children`` are the stages it contained."""

    name: str
    meta: Dict = field(default_factory=dict)
    start: float = 0.0
    end: Optional[float] = None
    children: List["SpanNode"] = field(default_factory=list)

    @property
    def duration_s(self) -> float:
        return (self.end if self.end is not None else time.perf_counter()) - self.start

    def to_dict(self) -> Dict:
        d: Dict = {"name": self.name, "duration_s": round(self.duration_s, 6)}
        if self.meta:
            d["meta"] = self.meta
        if self.children:
            d["children"] = [c.to_dict() for c in self.children]
        return d

    def find(self, name: str) -> Optional["SpanNode"]:
        """Depth-first lookup of the first descendant named *name*."""
        for child in self.children:
            if child.name == name:
                return child
            found = child.find(name)
            if found is not None:
                return found
        return None


class Tracer:
    """Per-registry span stack; completed top-level spans in ``roots``."""

    def __init__(self) -> None:
        self.roots: List[SpanNode] = []
        self._stack: List[SpanNode] = []

    def push(self, name: str, meta: Dict) -> SpanNode:
        node = SpanNode(name=name, meta=meta, start=time.perf_counter())
        if self._stack:
            self._stack[-1].children.append(node)
        self._stack.append(node)
        return node

    def pop(self, node: SpanNode) -> None:
        node.end = time.perf_counter()
        # Unwind to (and including) node; tolerates a missed pop below it.
        while self._stack:
            top = self._stack.pop()
            if top is node:
                break
        if not self._stack and (not self.roots or self.roots[-1] is not node):
            if node.end is not None and all(r is not node for r in self.roots):
                self.roots.append(node)

    def find(self, name: str) -> Optional[SpanNode]:
        """First span named *name* anywhere in the completed trees."""
        for root in self.roots:
            if root.name == name:
                return root
            found = root.find(name)
            if found is not None:
                return found
        return None


class _Span:
    """Context manager binding one SpanNode to the registry that opened it."""

    __slots__ = ("_tracer", "_node", "_name", "_meta")

    def __init__(self, tracer: Tracer, name: str, meta: Dict) -> None:
        self._tracer = tracer
        self._name = name
        self._meta = meta
        self._node: Optional[SpanNode] = None

    def __enter__(self) -> SpanNode:
        self._node = self._tracer.push(self._name, self._meta)
        return self._node

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self._node.meta["error"] = exc_type.__name__
        self._tracer.pop(self._node)


class _NullSpan:
    """Shared do-nothing span for the disabled path."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


def span(name: str, **meta):
    """Open a timed span named *name* on the active registry.

    Usage::

        with span("train", model="iguard"):
            model.fit(x)

    Free (a shared no-op) when telemetry is disabled.
    """
    from repro.telemetry.registry import get_registry

    registry = get_registry()
    if not registry.enabled:
        return _NULL_SPAN
    return _Span(registry.tracer, name, meta)
