"""JSONL event sink: one JSON object per line, appended as events fire.

Attach to a registry with ``registry.attach_sink(JsonlSink(path))``;
every ``registry.event(...)`` then lands on disk immediately, so a
crashed run still leaves its event stream behind.  ``load_events``
round-trips the file back to the list of records.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

PathLike = Union[str, Path]


class JsonlSink:
    """Append-only JSON-lines writer with a wall-clock stamp per record."""

    def __init__(self, path: PathLike, stamp: bool = True) -> None:
        self.path = Path(path)
        self.stamp = stamp
        self.emitted = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "a", encoding="utf-8")

    def emit(self, record: Dict) -> None:
        if self.stamp and "ts" not in record:
            record = {"ts": round(time.time(), 6), **record}
        self._fh.write(json.dumps(record, default=_jsonify) + "\n")
        self._fh.flush()
        self.emitted += 1

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def _jsonify(obj):
    """Fallback encoder: numpy scalars/arrays and anything str-able."""
    import numpy as np

    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    return str(obj)


def load_events(path: PathLike) -> List[Dict]:
    """Parse a JSONL event file back into records (skips blank lines)."""
    records: List[Dict] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
