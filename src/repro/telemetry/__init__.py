"""Unified telemetry: metrics registry, stage tracing, run reports.

The paper's evaluation is an exercise in reading counters off a Tofino —
per-path packet counts, storage occupancy, digest volume (Table 1,
App. B.1/B.2).  This package makes those signals (and the ML-side ones:
epoch losses, distillation fidelity, grid-search progress) first-class:

* :class:`MetricRegistry` — counters / gauges / numpy histograms plus a
  bounded event log; the process-wide default is a no-op
  :class:`NullRegistry`, so instrumentation costs ~nothing until a run
  opts in via :func:`set_registry` / :func:`use_registry` /
  :func:`run_report`.
* :func:`span` — hierarchical wall-time tree of experiment stages
  (dataset → train → compile → replay → metrics).
* :class:`JsonlSink` — streaming JSONL event log.
* :func:`write_report` / :func:`load_report` / :func:`format_report` —
  the per-run ``telemetry.json`` document and its pretty-printer
  (surfaced as ``repro report``).

Typical use::

    from repro.telemetry import run_report, span

    with run_report("telemetry.json", meta={"attack": "Mirai"}):
        result = run_testbed_experiment("Mirai", "iguard")
"""

from repro.telemetry.registry import (
    DEFAULT_EDGES,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    NullRegistry,
    get_registry,
    set_registry,
    use_registry,
)
from repro.telemetry.report import (
    SCHEMA,
    build_report,
    format_report,
    load_report,
    run_report,
    write_report,
)
from repro.telemetry.sink import JsonlSink, load_events
from repro.telemetry.tracing import SpanNode, Tracer, span

__all__ = [
    "DEFAULT_EDGES",
    "SCHEMA",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MetricRegistry",
    "NullRegistry",
    "SpanNode",
    "Tracer",
    "build_report",
    "format_report",
    "get_registry",
    "load_events",
    "load_report",
    "run_report",
    "set_registry",
    "span",
    "use_registry",
    "write_report",
]
