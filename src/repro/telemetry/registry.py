"""Metric registry: counters, gauges, and fixed-bucket histograms.

The registry is the in-process store every instrumented layer writes to.
Design constraints, in order:

1. **Zero dependency, zero cost when off.**  The module-level default is
   a :class:`NullRegistry` whose instruments are shared no-op singletons;
   an instrumentation site that runs against it pays one attribute call
   and nothing else.  Hot loops should additionally guard on
   ``registry.enabled`` and skip the call entirely.
2. **Names are flat dotted strings** (``switch.path.red``,
   ``nn.epoch_loss``) — the report writer groups them by prefix, nothing
   in the registry itself is hierarchical.
3. **Deterministic snapshots.**  :meth:`MetricRegistry.counters_dict`
   and friends return plain sorted dicts so test suites can assert
   bit-identical telemetry between two runs (the scalar-vs-batch
   differential lock relies on this).
4. **Safe to read from another thread.**  The live ops surface
   (:mod:`repro.ops`) snapshots the registry while the serving thread is
   writing to it.  Snapshot methods and multi-field writers (histogram
   observes, event appends) share one registry lock; single-field
   writers (``Counter.inc``, ``Gauge.set``) stay lock-free — a one-word
   read of a monotonic int can never be torn under the GIL, and keeping
   the hot increment path free of lock traffic preserves the
   zero-cost-when-off budget.

The event log is a **ring buffer with monotonic sequence numbers**: the
most recent *max_events* records are retained (older ones evicted into
``dropped_events``), and every record carries a process-stable ``seq``
so tail readers — ``/events?follow=1`` long-polling included — can
resume exactly where they left off via :meth:`MetricRegistry.tail`.
"""

from __future__ import annotations

import contextlib
import threading
from collections import deque
from typing import Deque, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counters only go up; got inc({n}) on {self.name!r}")
        self.value += n


class Gauge:
    """A last-write-wins scalar."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram over numpy edges.

    *edges* are the interior bucket boundaries: ``len(edges) + 1``
    buckets total, the first catching ``(-inf, edges[0])`` and the last
    ``[edges[-1], inf)``.  ``observe`` costs one ``searchsorted``;
    ``observe_many`` amortises it over an array.  Count/sum/min/max are
    tracked exactly so the report can show a summary without samples.

    A histogram mutates several fields per observation, so observe and
    summary share *lock* (the owning registry's lock when created via
    :meth:`MetricRegistry.histogram`) — a snapshot can never see
    ``count`` disagree with ``sum(bucket_counts)``.
    """

    __slots__ = (
        "name", "edges", "bucket_counts", "count", "total", "vmin", "vmax", "_lock",
    )

    def __init__(
        self, name: str, edges: Sequence[float], lock: Optional[threading.RLock] = None
    ) -> None:
        e = np.asarray(edges, dtype=float)
        if e.ndim != 1 or e.size < 1:
            raise ValueError(f"histogram {name!r} needs a 1-D non-empty edge array")
        if np.any(np.diff(e) <= 0):
            raise ValueError(f"histogram {name!r} edges must be strictly increasing")
        self.name = name
        self.edges = e
        self.bucket_counts = np.zeros(e.size + 1, dtype=np.int64)
        self.count = 0
        self.total = 0.0
        self.vmin: Optional[float] = None
        self.vmax: Optional[float] = None
        self._lock = lock if lock is not None else threading.RLock()

    def observe(self, value: float) -> None:
        v = float(value)
        with self._lock:
            self.bucket_counts[int(np.searchsorted(self.edges, v, side="right"))] += 1
            self.count += 1
            self.total += v
            self.vmin = v if self.vmin is None else min(self.vmin, v)
            self.vmax = v if self.vmax is None else max(self.vmax, v)

    def observe_many(self, values: np.ndarray) -> None:
        v = np.asarray(values, dtype=float).ravel()
        if v.size == 0:
            return
        idx = np.searchsorted(self.edges, v, side="right")
        with self._lock:
            np.add.at(self.bucket_counts, idx, 1)
            self.count += int(v.size)
            self.total += float(v.sum())
            lo, hi = float(v.min()), float(v.max())
            self.vmin = lo if self.vmin is None else min(self.vmin, lo)
            self.vmax = hi if self.vmax is None else max(self.vmax, hi)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> Dict:
        with self._lock:
            return {
                "edges": self.edges.tolist(),
                "bucket_counts": self.bucket_counts.tolist(),
                "count": self.count,
                "sum": self.total,
                "mean": self.mean,
                "min": self.vmin,
                "max": self.vmax,
            }


#: Default edges for histograms created without explicit buckets:
#: log-spaced decades covering losses, durations, and rates alike.
DEFAULT_EDGES = tuple(float(10.0**e) for e in range(-9, 10))


class _NullCounter:
    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram:
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass

    def observe_many(self, values) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class MetricRegistry:
    """Namespace of counters, gauges, and histograms plus an event log.

    Instruments are created on first access and shared thereafter;
    fetching a handle once outside a hot loop and calling it inside is
    the intended pattern.  ``event`` appends a structured record to the
    in-memory log (bounded by *max_events*) and forwards it to an
    attached sink (see :class:`repro.telemetry.sink.JsonlSink`).
    """

    enabled = True

    def __init__(self, max_events: int = 10_000) -> None:
        self._lock = threading.RLock()
        self._event_seen = threading.Condition(self._lock)
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        #: Ring of ``(seq, record)`` pairs — most recent *max_events*.
        self._events: Deque[Tuple[int, Dict]] = deque(maxlen=max(max_events, 0) or None)
        self._next_seq = 0
        self.max_events = max_events
        self.dropped_events = 0
        self.sink = None  # duck-typed: needs .emit(record: dict)
        from repro.telemetry.tracing import Tracer

        self.tracer = Tracer()

    # -- instrument accessors ---------------------------------------------

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            with self._lock:
                c = self._counters.setdefault(name, Counter(name))
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            with self._lock:
                g = self._gauges.setdefault(name, Gauge(name))
        return g

    def histogram(self, name: str, edges: Optional[Sequence[float]] = None) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            with self._lock:
                h = self._histograms.setdefault(
                    name, Histogram(name, edges or DEFAULT_EDGES, lock=self._lock)
                )
        return h

    # -- events ------------------------------------------------------------

    def event(self, kind: str, **fields) -> None:
        record = {"kind": kind, **fields}
        with self._event_seen:
            if self.max_events <= 0:
                self.dropped_events += 1
            else:
                if len(self._events) == self.max_events:
                    self.dropped_events += 1  # ring eviction of the oldest
                self._events.append((self._next_seq, record))
            self._next_seq += 1
            self._event_seen.notify_all()
        if self.sink is not None:
            self.sink.emit(record)

    @property
    def events(self) -> List[Dict]:
        """The retained event records, oldest first (the ring's tail)."""
        with self._lock:
            return [record for _seq, record in self._events]

    @property
    def last_seq(self) -> int:
        """Sequence number of the most recent event (-1 before the first)."""
        with self._lock:
            return self._next_seq - 1

    def tail(
        self, n: Optional[int] = None, since_seq: Optional[int] = None
    ) -> Tuple[List[Dict], int]:
        """The most recent events as ``({"seq": s, **record}, ...)``.

        ``since_seq`` restricts to records strictly newer than that
        sequence number (the long-poll cursor contract: pass the
        ``last_seq`` of the previous call to get only what landed since);
        ``n`` caps the count, keeping the newest.  Returns
        ``(records, last_seq)`` where ``last_seq`` is the registry-wide
        latest sequence number — even when the matching records
        themselves were already evicted from the ring.
        """
        with self._lock:
            records = [
                {"seq": seq, **record}
                for seq, record in self._events
                if since_seq is None or seq > since_seq
            ]
            if n is not None and len(records) > n:
                records = records[-n:]
            return records, self._next_seq - 1

    def wait_for_events(self, since_seq: int, timeout: Optional[float] = None) -> bool:
        """Block until an event with ``seq > since_seq`` exists (or
        *timeout* elapses); returns whether one does.  The follow mode of
        ``/events`` parks here instead of spinning on :meth:`tail`."""
        with self._event_seen:
            return self._event_seen.wait_for(
                lambda: self._next_seq - 1 > since_seq, timeout=timeout
            )

    def attach_sink(self, sink) -> None:
        """Forward every subsequent event to *sink* (``emit(record)``)."""
        self.sink = sink

    # -- snapshots -----------------------------------------------------------

    def counters_dict(self) -> Dict[str, int]:
        with self._lock:
            return {name: c.value for name, c in sorted(self._counters.items())}

    def gauges_dict(self) -> Dict[str, float]:
        with self._lock:
            return {name: g.value for name, g in sorted(self._gauges.items())}

    def histograms_dict(self) -> Dict[str, Dict]:
        with self._lock:
            return {name: h.summary() for name, h in sorted(self._histograms.items())}

    def snapshot(self, meta: Optional[Dict] = None, max_events: Optional[int] = None) -> Dict:
        """One consistent point-in-time document of the whole registry.

        Shaped exactly like a ``telemetry.json`` report (schema marker
        included) so ``format_report`` and ``repro report --watch``
        render it unchanged; spans are omitted (they are still open while
        the run is live).  Taken under the registry lock: counters are
        monotone between successive snapshots and histogram summaries are
        internally consistent.
        """
        with self._lock:
            events, last_seq = self.tail(n=max_events)
            return {
                "schema": "repro.telemetry/v1",
                "meta": dict(meta or {}),
                "counters": self.counters_dict(),
                "gauges": self.gauges_dict(),
                "histograms": self.histograms_dict(),
                "events": events,
                "last_seq": last_seq,
                "dropped_events": self.dropped_events,
            }


class NullRegistry(MetricRegistry):
    """The disabled registry: every instrument is a shared no-op.

    Instrumented code paths that only do ``registry.counter(...).inc()``
    cost two cheap calls; paths that guard on ``registry.enabled`` cost
    one attribute read.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(max_events=0)

    def counter(self, name: str) -> Counter:  # type: ignore[override]
        return _NULL_COUNTER  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:  # type: ignore[override]
        return _NULL_GAUGE  # type: ignore[return-value]

    def histogram(self, name, edges=None) -> Histogram:  # type: ignore[override]
        return _NULL_HISTOGRAM  # type: ignore[return-value]

    def event(self, kind: str, **fields) -> None:
        pass


#: Process-wide current registry.  Off by default.
_REGISTRY: MetricRegistry = NullRegistry()


def get_registry() -> MetricRegistry:
    """The currently active registry (a :class:`NullRegistry` when off)."""
    return _REGISTRY


def set_registry(registry: Optional[MetricRegistry]) -> MetricRegistry:
    """Install *registry* globally (None → disable); returns the previous one."""
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = registry if registry is not None else NullRegistry()
    return previous


@contextlib.contextmanager
def use_registry(registry: Optional[MetricRegistry]) -> Iterator[MetricRegistry]:
    """Scope *registry* as the active one, restoring the previous on exit."""
    previous = set_registry(registry)
    try:
        yield get_registry()
    finally:
        set_registry(previous)
