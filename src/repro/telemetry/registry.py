"""Metric registry: counters, gauges, and fixed-bucket histograms.

The registry is the in-process store every instrumented layer writes to.
Design constraints, in order:

1. **Zero dependency, zero cost when off.**  The module-level default is
   a :class:`NullRegistry` whose instruments are shared no-op singletons;
   an instrumentation site that runs against it pays one attribute call
   and nothing else.  Hot loops should additionally guard on
   ``registry.enabled`` and skip the call entirely.
2. **Names are flat dotted strings** (``switch.path.red``,
   ``nn.epoch_loss``) — the report writer groups them by prefix, nothing
   in the registry itself is hierarchical.
3. **Deterministic snapshots.**  :meth:`MetricRegistry.counters_dict`
   and friends return plain sorted dicts so test suites can assert
   bit-identical telemetry between two runs (the scalar-vs-batch
   differential lock relies on this).
"""

from __future__ import annotations

import contextlib
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counters only go up; got inc({n}) on {self.name!r}")
        self.value += n


class Gauge:
    """A last-write-wins scalar."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram over numpy edges.

    *edges* are the interior bucket boundaries: ``len(edges) + 1``
    buckets total, the first catching ``(-inf, edges[0])`` and the last
    ``[edges[-1], inf)``.  ``observe`` costs one ``searchsorted``;
    ``observe_many`` amortises it over an array.  Count/sum/min/max are
    tracked exactly so the report can show a summary without samples.
    """

    __slots__ = ("name", "edges", "bucket_counts", "count", "total", "vmin", "vmax")

    def __init__(self, name: str, edges: Sequence[float]) -> None:
        e = np.asarray(edges, dtype=float)
        if e.ndim != 1 or e.size < 1:
            raise ValueError(f"histogram {name!r} needs a 1-D non-empty edge array")
        if np.any(np.diff(e) <= 0):
            raise ValueError(f"histogram {name!r} edges must be strictly increasing")
        self.name = name
        self.edges = e
        self.bucket_counts = np.zeros(e.size + 1, dtype=np.int64)
        self.count = 0
        self.total = 0.0
        self.vmin: Optional[float] = None
        self.vmax: Optional[float] = None

    def observe(self, value: float) -> None:
        v = float(value)
        self.bucket_counts[int(np.searchsorted(self.edges, v, side="right"))] += 1
        self.count += 1
        self.total += v
        self.vmin = v if self.vmin is None else min(self.vmin, v)
        self.vmax = v if self.vmax is None else max(self.vmax, v)

    def observe_many(self, values: np.ndarray) -> None:
        v = np.asarray(values, dtype=float).ravel()
        if v.size == 0:
            return
        idx = np.searchsorted(self.edges, v, side="right")
        np.add.at(self.bucket_counts, idx, 1)
        self.count += int(v.size)
        self.total += float(v.sum())
        lo, hi = float(v.min()), float(v.max())
        self.vmin = lo if self.vmin is None else min(self.vmin, lo)
        self.vmax = hi if self.vmax is None else max(self.vmax, hi)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> Dict:
        return {
            "edges": self.edges.tolist(),
            "bucket_counts": self.bucket_counts.tolist(),
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.vmin,
            "max": self.vmax,
        }


#: Default edges for histograms created without explicit buckets:
#: log-spaced decades covering losses, durations, and rates alike.
DEFAULT_EDGES = tuple(float(10.0**e) for e in range(-9, 10))


class _NullCounter:
    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram:
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass

    def observe_many(self, values) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class MetricRegistry:
    """Namespace of counters, gauges, and histograms plus an event log.

    Instruments are created on first access and shared thereafter;
    fetching a handle once outside a hot loop and calling it inside is
    the intended pattern.  ``event`` appends a structured record to the
    in-memory log (bounded by *max_events*) and forwards it to an
    attached sink (see :class:`repro.telemetry.sink.JsonlSink`).
    """

    enabled = True

    def __init__(self, max_events: int = 10_000) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self.events: List[Dict] = []
        self.max_events = max_events
        self.dropped_events = 0
        self.sink = None  # duck-typed: needs .emit(record: dict)
        from repro.telemetry.tracing import Tracer

        self.tracer = Tracer()

    # -- instrument accessors ---------------------------------------------

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str, edges: Optional[Sequence[float]] = None) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name, edges or DEFAULT_EDGES)
        return h

    # -- events ------------------------------------------------------------

    def event(self, kind: str, **fields) -> None:
        record = {"kind": kind, **fields}
        if len(self.events) < self.max_events:
            self.events.append(record)
        else:
            self.dropped_events += 1
        if self.sink is not None:
            self.sink.emit(record)

    def attach_sink(self, sink) -> None:
        """Forward every subsequent event to *sink* (``emit(record)``)."""
        self.sink = sink

    # -- snapshots -----------------------------------------------------------

    def counters_dict(self) -> Dict[str, int]:
        return {name: c.value for name, c in sorted(self._counters.items())}

    def gauges_dict(self) -> Dict[str, float]:
        return {name: g.value for name, g in sorted(self._gauges.items())}

    def histograms_dict(self) -> Dict[str, Dict]:
        return {name: h.summary() for name, h in sorted(self._histograms.items())}


class NullRegistry(MetricRegistry):
    """The disabled registry: every instrument is a shared no-op.

    Instrumented code paths that only do ``registry.counter(...).inc()``
    cost two cheap calls; paths that guard on ``registry.enabled`` cost
    one attribute read.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(max_events=0)

    def counter(self, name: str) -> Counter:  # type: ignore[override]
        return _NULL_COUNTER  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:  # type: ignore[override]
        return _NULL_GAUGE  # type: ignore[return-value]

    def histogram(self, name, edges=None) -> Histogram:  # type: ignore[override]
        return _NULL_HISTOGRAM  # type: ignore[return-value]

    def event(self, kind: str, **fields) -> None:
        pass


#: Process-wide current registry.  Off by default.
_REGISTRY: MetricRegistry = NullRegistry()


def get_registry() -> MetricRegistry:
    """The currently active registry (a :class:`NullRegistry` when off)."""
    return _REGISTRY


def set_registry(registry: Optional[MetricRegistry]) -> MetricRegistry:
    """Install *registry* globally (None → disable); returns the previous one."""
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = registry if registry is not None else NullRegistry()
    return previous


@contextlib.contextmanager
def use_registry(registry: Optional[MetricRegistry]) -> Iterator[MetricRegistry]:
    """Scope *registry* as the active one, restoring the previous on exit."""
    previous = set_registry(registry)
    try:
        yield get_registry()
    finally:
        set_registry(previous)
